"""Batch compilation jobs and the helpers that mass-produce them.

A :class:`BatchJob` is one self-contained, picklable compilation unit:
a kernel (frontend source text or a bare access pattern), the target
AGU, the allocator configuration, and the execution options.  Being
plain frozen dataclasses end to end, jobs travel across process
boundaries unchanged, which is what lets the engine fan a suite out
over a process pool.

Factories cover the common batch shapes:

* :func:`jobs_from_suite` / :func:`jobs_from_kernels` -- the bundled
  DSP kernel library, by suite name or explicit kernel names;
* :func:`jobs_from_random` -- seeded random-pattern families (the
  statistical experiments' input);
* :func:`job_matrix` -- the cross product of a job list with an
  ``AguSpec`` x ``AllocatorConfig`` grid, for sweep-style batches.

Besides compilation units, the module defines two experiment-point job
types: :class:`StatisticalGridJob` -- one (N, M, K) grid point of the
paper's statistical comparison (EXP-S1) as a self-contained, cacheable
work unit -- and the generic :class:`ExperimentPointJob`, which turns
one point of any experiment registered in
:mod:`repro.batch.registry` into the same kind of unit.  Both shard
over the same engine, process pool, and result caches as kernel
suites do.
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.agu.model import AguSpec
from repro.batch.digest import DIGEST_VERSION, job_digest
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.errors import BatchError
from repro.ir.parser import parse_kernel
from repro.ir.types import AccessPattern, ArrayDecl, Kernel, Loop
from repro.merging.cost import CostModel, cover_cost
from repro.merging.greedy import best_pair_merge
from repro.merging.naive import naive_merge
from repro.workloads.kernels import get_kernel
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)
from repro.workloads.suite import suite_kernels


@dataclass(frozen=True)
class BatchJob:
    """One compilation unit of a batch.

    Exactly one of ``source`` (frontend text) and ``pattern`` (a bare
    :class:`~repro.ir.types.AccessPattern`) must be given.  ``name`` is
    a display label only; it does not enter the cache key.
    """

    name: str
    spec: AguSpec
    config: AllocatorConfig | None = None
    source: str | None = None
    pattern: AccessPattern | None = None
    run_simulation: bool = True
    n_iterations: int | None = None
    #: Also generate and (when simulating) audit the unoptimized
    #: regular-C-compiler address code, for comparison experiments.
    include_baseline: bool = False

    def __post_init__(self) -> None:
        if (self.source is None) == (self.pattern is None):
            raise BatchError(
                f"job {self.name!r}: exactly one of source/pattern "
                f"must be given")
        if self.n_iterations is not None and self.n_iterations < 1:
            raise BatchError(
                f"job {self.name!r}: n_iterations must be >= 1, got "
                f"{self.n_iterations}")

    @property
    def size_hint(self) -> float | None:
        """Advisory size estimate (bigger = slower) for size-aware
        scheduling; pattern length, or an access-count proxy for
        source kernels.  Never enters the cache key."""
        if self.pattern is not None:
            return float(len(self.pattern))
        if self.source is not None:
            # Array accesses dominate compile cost; their bracketed
            # subscripts are a cheap, parse-free proxy.
            return float(self.source.count("["))
        return None

    def kernel(self) -> Kernel:
        """The job's kernel: parsed from source, or wrapped pattern."""
        if self.source is not None:
            return parse_kernel(self.source, name=self.name)
        pattern = self.pattern
        assert pattern is not None
        # Start the loop variable high enough that no access touches a
        # negative array element, mirroring the kernel library's
        # convention for simulatable loops.
        start = max([0] + [-access.index.offset for access in pattern])
        decls = tuple(ArrayDecl(array) for array in sorted(pattern.arrays()))
        return Kernel(name=self.name, loop=Loop(pattern, start=start),
                      arrays=decls)


def jobs_from_kernels(names: Sequence[str], spec: AguSpec,
                      config: AllocatorConfig | None = None, *,
                      run_simulation: bool = True,
                      n_iterations: int | None = None,
                      include_baseline: bool = False) -> list[BatchJob]:
    """Jobs over named kernels of the bundled DSP library."""
    return [
        BatchJob(name=name, spec=spec, config=config,
                 source=get_kernel(name).source,
                 run_simulation=run_simulation, n_iterations=n_iterations,
                 include_baseline=include_baseline)
        for name in names
    ]


def jobs_from_suite(suite: str, spec: AguSpec,
                    config: AllocatorConfig | None = None, *,
                    run_simulation: bool = True,
                    n_iterations: int | None = None,
                    include_baseline: bool = False) -> list[BatchJob]:
    """Jobs over a named kernel suite (see :data:`repro.workloads.SUITES`)."""
    return jobs_from_kernels(
        [entry.name for entry in suite_kernels(suite)], spec, config,
        run_simulation=run_simulation, n_iterations=n_iterations,
        include_baseline=include_baseline)


def jobs_from_random(pattern_config: RandomPatternConfig, count: int,
                     spec: AguSpec,
                     config: AllocatorConfig | None = None, *,
                     seed: int = 0, run_simulation: bool = False,
                     n_iterations: int | None = None,
                     include_baseline: bool = False) -> list[BatchJob]:
    """Jobs over a seeded random-pattern family.

    Reproducible: the same ``(pattern_config, count, seed)`` yields the
    same jobs (and therefore the same cache keys).  Simulation defaults
    off because random batches are usually allocation-throughput work.
    """
    patterns = generate_batch(pattern_config, count, seed=seed)
    stem = (f"{pattern_config.distribution}"
            f"-n{pattern_config.n_accesses}-seed{seed}")
    return [
        BatchJob(name=f"{stem}-{index}", spec=spec, config=config,
                 pattern=pattern, run_simulation=run_simulation,
                 n_iterations=n_iterations,
                 include_baseline=include_baseline)
        for index, pattern in enumerate(patterns)
    ]


# ----------------------------------------------------------------------
# EXP-S1 grid points as batch jobs
# ----------------------------------------------------------------------
#: Seed strides of the EXP-S1 grid.  Each grid point's *patterns* come
#: from the stream ``seed + PATTERN_SEED_STRIDE * grid_index``; its
#: *naive-baseline* merge orders come from the independent stream
#: ``seed + NAIVE_SEED_STRIDE * (grid_index + 1)`` advanced by
#: ``NAIVE_PATTERN_STRIDE * pattern_index + repeat`` per draw.  The
#: strides are large, distinct primes: NAIVE_SEED_STRIDE exceeds the
#: largest per-point naive offset for up to 147 patterns per grid
#: point, so no two grid points ever share a naive merge order, and
#: the ``+ 1`` keeps every naive stream clear of the (much smaller)
#: pattern-seed range, so a pattern RNG never aliases a merge-order
#: RNG either.  (An earlier seeding scheme omitted the grid term,
#: which made every grid point reuse one set of "independent" naive
#: baselines.)
PATTERN_SEED_STRIDE = 7919
NAIVE_SEED_STRIDE = 15_485_863
NAIVE_PATTERN_STRIDE = 104_729

#: EXP-S3 (distribution sensitivity) repeats the EXP-S1 grid once per
#: offset distribution.  Each repetition keeps the *pattern* streams
#: paired (same base seed, different distribution) but must draw its
#: own naive-baseline merge orders: distribution ``d`` uses the base
#: ``seed + NAIVE_SEED_STRIDE * DISTRIBUTION_SEED_SPAN * (d + 1)``, so
#: its per-grid-point streams sit ``DISTRIBUTION_SEED_SPAN`` naive
#: strides apart from every other distribution's (disjoint for grids
#: of up to ``DISTRIBUTION_SEED_SPAN - 1`` points -- far beyond any
#: real configuration).  (An earlier scheme reused one base seed, which
#: made all four distributions replay identical merge-order streams.)
DISTRIBUTION_SEED_SPAN = 1009


def naive_baseline_seed(naive_seed: int, pattern_index: int,
                        repeat: int) -> int:
    """The merge-order seed of one naive-baseline draw (see above)."""
    return naive_seed + NAIVE_PATTERN_STRIDE * pattern_index + repeat


class CacheableResult:
    """The cache round-trip protocol shared by engine result types.

    Mixed into frozen result dataclasses that carry a ``name`` (display
    label, excluded from content addressing) and a ``from_cache`` flag;
    the payload is every other field.
    """

    def payload(self) -> dict:
        """The JSON-able cache payload (cache-state flag excluded)."""
        record = dataclasses.asdict(self)
        del record["from_cache"]
        return record

    @classmethod
    def from_payload(cls, payload: dict, job):
        """Rebuild from a cache payload for ``job``; ``None`` if the
        payload is malformed.  Display metadata (the name) comes from
        the job being served, not from whoever stored the entry."""
        try:
            return cls(**{**payload, "name": job.name, "from_cache": True})
        except TypeError:
            return None


@dataclass(frozen=True)
class GridPointResult(CacheableResult):
    """Per-grid-point summary of EXP-S1 (picklable, JSON-able).

    The statistical twin of :class:`~repro.batch.engine.JobResult`:
    what the engine caches and streams for a
    :class:`StatisticalGridJob`.  ``sum_optimized``/``sum_naive`` keep
    the exact per-point cost sums so the grid-level (cost-weighted)
    reduction can be reassembled bit-identically from shards.
    """

    name: str
    digest: str
    n: int
    m: int
    k: int
    n_patterns: int
    mean_k_tilde: float
    #: Fraction of patterns where merging was needed at all (K~ > K).
    constrained_fraction: float
    mean_optimized: float
    mean_naive: float
    sum_optimized: float
    sum_naive: float
    wall_seconds: float
    from_cache: bool = False


@dataclass(frozen=True)
class StatisticalGridJob:
    """One (N, M, K) grid point of EXP-S1 as a cacheable batch job.

    Self-contained and picklable: carries the pattern-family and
    allocator parameters plus this point's two seeds, so the engine can
    fan grid points out over a process pool and content-address their
    results.  ``name`` is a display label only; it does not enter the
    cache key.
    """

    name: str
    n: int
    m: int
    k: int
    patterns_per_config: int
    offset_span: int
    distribution: str
    #: Seed of this point's random-pattern family.
    pattern_seed: int
    #: Base seed of this point's naive-baseline merge orders.
    naive_seed: int
    naive_repeats: int
    cost_model: CostModel = CostModel.STEADY_STATE
    exact_cover_limit: int = 24
    cover_node_budget: int = 30_000

    result_type = GridPointResult

    @property
    def size_hint(self) -> float | None:
        """Advisory size estimate for size-aware scheduling: solver
        cost grows with the pattern length N (dominant) and linearly
        with the patterns per point.  Never enters the cache key."""
        return float(self.n * self.patterns_per_config)

    def cache_key(self) -> dict:
        """The digest payload: everything but the display name."""
        record = dataclasses.asdict(self)
        del record["name"]
        return {"v": DIGEST_VERSION,
                "experiment": "exp-s1-grid-point", **record}

    def execute(self) -> GridPointResult:
        """Run this grid point on the calling process."""
        started = time.perf_counter()
        allocator = AddressRegisterAllocator(
            AguSpec(self.k, self.m),
            AllocatorConfig(cost_model=self.cost_model,
                            exact_cover_limit=self.exact_cover_limit,
                            cover_node_budget=self.cover_node_budget))
        patterns = generate_batch(
            RandomPatternConfig(self.n, offset_span=self.offset_span,
                                distribution=self.distribution),
            self.patterns_per_config, seed=self.pattern_seed)

        optimized_costs: list[float] = []
        naive_costs: list[float] = []
        k_tildes: list[float] = []
        constrained = 0
        for pattern_index, pattern in enumerate(patterns):
            cover, k_tilde, _feasible, _optimal = \
                allocator.initial_cover(pattern)
            k_tildes.append(float(k_tilde if k_tilde is not None
                                  else cover.n_paths))
            if cover.n_paths <= self.k:
                cost = cover_cost(cover, pattern, self.m, self.cost_model)
                optimized_costs.append(float(cost))
                naive_costs.append(float(cost))
                continue
            constrained += 1
            merged = best_pair_merge(cover, self.k, pattern, self.m,
                                     self.cost_model)
            optimized_costs.append(float(merged.total_cost))
            repeats = [
                naive_merge(cover, self.k, pattern, self.m,
                            self.cost_model, strategy="random",
                            seed=naive_baseline_seed(
                                self.naive_seed, pattern_index,
                                repeat)).total_cost
                for repeat in range(self.naive_repeats)
            ]
            naive_costs.append(sum(repeats) / len(repeats))

        count = len(patterns)
        if count == 0:
            raise BatchError(
                f"grid point {self.name!r}: patterns_per_config must "
                f"be >= 1")
        return GridPointResult(
            name=self.name, digest=job_digest(self),
            n=self.n, m=self.m, k=self.k, n_patterns=count,
            mean_k_tilde=sum(k_tildes) / count,
            constrained_fraction=constrained / count,
            mean_optimized=sum(optimized_costs) / count,
            mean_naive=sum(naive_costs) / count,
            sum_optimized=sum(optimized_costs),
            sum_naive=sum(naive_costs),
            wall_seconds=time.perf_counter() - started)


# ----------------------------------------------------------------------
# Generic experiment points as batch jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentPointResult(CacheableResult):
    """One experiment point's measurements (picklable, JSON-able).

    The generic twin of :class:`GridPointResult`: what the engine
    caches and streams for an :class:`ExperimentPointJob`.  ``values``
    holds whatever the experiment's point function measured, already in
    JSON-canonical form (dicts, lists, scalars -- see
    :meth:`ExperimentPointJob.execute`), so a result rebuilt from any
    cache backend is bit-identical to the freshly computed one.
    """

    name: str
    digest: str
    #: Registry id of the experiment this point belongs to.
    experiment: str
    #: Position in the *current* enumeration.  Display metadata, like
    #: ``name``: excluded from the cache payload and rebuilt from the
    #: job being served, so a cache hit against a reordered grid never
    #: replays a stale position.
    index: int
    #: The point function's measurements, JSON-canonical.
    values: dict
    wall_seconds: float
    from_cache: bool = False

    def payload(self) -> dict:
        """The cache payload, minus the display metadata (name, index).
        """
        record = super().payload()
        del record["name"]
        del record["index"]
        return record

    @classmethod
    def from_payload(cls, payload: dict, job):
        """Rebuild from a payload; display metadata comes from ``job``.
        """
        try:
            return cls(**{**payload, "name": job.name, "index": job.index,
                          "from_cache": True})
        except TypeError:
            return None


@dataclass(frozen=True)
class ExperimentPointJob:
    """One point of a registered experiment as a cacheable batch job.

    Self-contained and picklable: ``experiment`` names an
    :class:`~repro.batch.registry.ExperimentDefinition` (resolved at
    execution time, so the job itself stays a plain data record across
    process boundaries) and ``params`` carries everything that point's
    outcome depends on -- grid coordinates, derived seeds, and
    allocator/solver settings, all JSON-able.  The content digest
    covers the experiment id and the params; ``name`` and ``index`` are
    display/ordering metadata and deliberately excluded, so relabeled
    or re-enumerated points keep hitting the same cache entries.
    """

    name: str
    experiment: str
    index: int
    params: dict = field(default_factory=dict)

    result_type = ExperimentPointResult

    @property
    def size_hint(self) -> float | None:
        """Advisory size estimate for size-aware scheduling.

        Delegates to the experiment definition's ``size_hint``
        callable when the registry provides one; otherwise falls back
        to a generic proxy (the point's ``n`` parameter, scaled by
        its pattern count when present).  ``None`` when nothing can
        be estimated.  Never enters the cache key.
        """
        from repro.batch.registry import get_experiment

        try:
            definition = get_experiment(self.experiment)
        except BatchError:
            definition = None
        if definition is not None \
                and definition.size_hint is not None:
            return definition.size_hint(dict(self.params))
        n = self.params.get("n")
        if isinstance(n, bool) or not isinstance(n, (int, float)):
            return None
        patterns = self.params.get("patterns_per_config",
                                   self.params.get("patterns", 1))
        if isinstance(patterns, bool) \
                or not isinstance(patterns, (int, float)):
            patterns = 1
        return float(n) * float(patterns)

    def cache_key(self) -> dict:
        """The digest payload: experiment id + point parameters."""
        return {"v": DIGEST_VERSION,
                "experiment": f"exp-point/{self.experiment}",
                "params": self.params}

    def execute(self) -> ExperimentPointResult:
        """Run this point on the calling process.

        The measured values are canonicalized through a JSON round
        trip, so the cold path hands back exactly what a cache hit
        would (a point function returning anything JSON cannot encode
        fails loudly here instead of corrupting the cache).
        """
        from repro.batch.registry import get_experiment

        started = time.perf_counter()
        definition = get_experiment(self.experiment)
        values: Any = definition.run_point(dict(self.params))
        values = json.loads(json.dumps(values, sort_keys=True))
        if not isinstance(values, dict):
            raise BatchError(
                f"experiment {self.experiment!r}: point function must "
                f"return a dict of values, got {type(values).__name__}")
        return ExperimentPointResult(
            name=self.name, digest=job_digest(self),
            experiment=self.experiment, index=self.index, values=values,
            wall_seconds=time.perf_counter() - started)


def job_matrix(jobs: Iterable[BatchJob], specs: Sequence[AguSpec],
               configs: Sequence[AllocatorConfig | None] = (None,),
               ) -> list[BatchJob]:
    """Cross every job with every spec and allocator configuration.

    Job names gain an ``@K<k>M<m>`` suffix (plus ``/c<i>`` when more
    than one configuration is in play) so matrix rows stay tellable
    apart in reports.
    """
    if not specs:
        raise BatchError("job_matrix needs at least one spec")
    if not configs:
        raise BatchError("job_matrix needs at least one config")
    matrix = []
    for job in jobs:
        for spec in specs:
            for config_index, config in enumerate(configs):
                name = (f"{job.name}@K{spec.n_registers}"
                        f"M{spec.modify_range}")
                if len(configs) > 1:
                    name += f"/c{config_index}"
                matrix.append(replace(job, name=name, spec=spec,
                                      config=config))
    return matrix
