"""Batch compilation jobs and the helpers that mass-produce them.

A :class:`BatchJob` is one self-contained, picklable compilation unit:
a kernel (frontend source text or a bare access pattern), the target
AGU, the allocator configuration, and the execution options.  Being
plain frozen dataclasses end to end, jobs travel across process
boundaries unchanged, which is what lets the engine fan a suite out
over a process pool.

Factories cover the common batch shapes:

* :func:`jobs_from_suite` / :func:`jobs_from_kernels` -- the bundled
  DSP kernel library, by suite name or explicit kernel names;
* :func:`jobs_from_random` -- seeded random-pattern families (the
  statistical experiments' input);
* :func:`job_matrix` -- the cross product of a job list with an
  ``AguSpec`` x ``AllocatorConfig`` grid, for sweep-style batches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.agu.model import AguSpec
from repro.core.config import AllocatorConfig
from repro.errors import BatchError
from repro.ir.parser import parse_kernel
from repro.ir.types import AccessPattern, ArrayDecl, Kernel, Loop
from repro.workloads.kernels import get_kernel
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)
from repro.workloads.suite import suite_kernels


@dataclass(frozen=True)
class BatchJob:
    """One compilation unit of a batch.

    Exactly one of ``source`` (frontend text) and ``pattern`` (a bare
    :class:`~repro.ir.types.AccessPattern`) must be given.  ``name`` is
    a display label only; it does not enter the cache key.
    """

    name: str
    spec: AguSpec
    config: AllocatorConfig | None = None
    source: str | None = None
    pattern: AccessPattern | None = None
    run_simulation: bool = True
    n_iterations: int | None = None
    #: Also generate and (when simulating) audit the unoptimized
    #: regular-C-compiler address code, for comparison experiments.
    include_baseline: bool = False

    def __post_init__(self) -> None:
        if (self.source is None) == (self.pattern is None):
            raise BatchError(
                f"job {self.name!r}: exactly one of source/pattern "
                f"must be given")
        if self.n_iterations is not None and self.n_iterations < 1:
            raise BatchError(
                f"job {self.name!r}: n_iterations must be >= 1, got "
                f"{self.n_iterations}")

    def kernel(self) -> Kernel:
        """The job's kernel: parsed from source, or wrapped pattern."""
        if self.source is not None:
            return parse_kernel(self.source, name=self.name)
        pattern = self.pattern
        assert pattern is not None
        # Start the loop variable high enough that no access touches a
        # negative array element, mirroring the kernel library's
        # convention for simulatable loops.
        start = max([0] + [-access.index.offset for access in pattern])
        decls = tuple(ArrayDecl(array) for array in sorted(pattern.arrays()))
        return Kernel(name=self.name, loop=Loop(pattern, start=start),
                      arrays=decls)


def jobs_from_kernels(names: Sequence[str], spec: AguSpec,
                      config: AllocatorConfig | None = None, *,
                      run_simulation: bool = True,
                      n_iterations: int | None = None,
                      include_baseline: bool = False) -> list[BatchJob]:
    """Jobs over named kernels of the bundled DSP library."""
    return [
        BatchJob(name=name, spec=spec, config=config,
                 source=get_kernel(name).source,
                 run_simulation=run_simulation, n_iterations=n_iterations,
                 include_baseline=include_baseline)
        for name in names
    ]


def jobs_from_suite(suite: str, spec: AguSpec,
                    config: AllocatorConfig | None = None, *,
                    run_simulation: bool = True,
                    n_iterations: int | None = None,
                    include_baseline: bool = False) -> list[BatchJob]:
    """Jobs over a named kernel suite (see :data:`repro.workloads.SUITES`)."""
    return jobs_from_kernels(
        [entry.name for entry in suite_kernels(suite)], spec, config,
        run_simulation=run_simulation, n_iterations=n_iterations,
        include_baseline=include_baseline)


def jobs_from_random(pattern_config: RandomPatternConfig, count: int,
                     spec: AguSpec,
                     config: AllocatorConfig | None = None, *,
                     seed: int = 0, run_simulation: bool = False,
                     n_iterations: int | None = None,
                     include_baseline: bool = False) -> list[BatchJob]:
    """Jobs over a seeded random-pattern family.

    Reproducible: the same ``(pattern_config, count, seed)`` yields the
    same jobs (and therefore the same cache keys).  Simulation defaults
    off because random batches are usually allocation-throughput work.
    """
    patterns = generate_batch(pattern_config, count, seed=seed)
    stem = (f"{pattern_config.distribution}"
            f"-n{pattern_config.n_accesses}-seed{seed}")
    return [
        BatchJob(name=f"{stem}-{index}", spec=spec, config=config,
                 pattern=pattern, run_simulation=run_simulation,
                 n_iterations=n_iterations,
                 include_baseline=include_baseline)
        for index, pattern in enumerate(patterns)
    ]


def job_matrix(jobs: Iterable[BatchJob], specs: Sequence[AguSpec],
               configs: Sequence[AllocatorConfig | None] = (None,),
               ) -> list[BatchJob]:
    """Cross every job with every spec and allocator configuration.

    Job names gain an ``@K<k>M<m>`` suffix (plus ``/c<i>`` when more
    than one configuration is in play) so matrix rows stay tellable
    apart in reports.
    """
    if not specs:
        raise BatchError("job_matrix needs at least one spec")
    if not configs:
        raise BatchError("job_matrix needs at least one config")
    matrix = []
    for job in jobs:
        for spec in specs:
            for config_index, config in enumerate(configs):
                name = (f"{job.name}@K{spec.n_registers}"
                        f"M{spec.modify_range}")
                if len(configs) > 1:
                    name += f"/c{config_index}"
                matrix.append(replace(job, name=name, spec=spec,
                                      config=config))
    return matrix
