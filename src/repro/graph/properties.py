"""Structural statistics of access graphs.

These are used by the experiment harness to characterize workloads
(density of zero-cost opportunities) and by tests as independent
cross-checks of the graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.access_graph import AccessGraph


@dataclass(frozen=True)
class DegreeSummary:
    """Min/mean/max out- and in-degrees of the intra-iteration graph."""

    min_out: int
    mean_out: float
    max_out: int
    min_in: int
    mean_in: float
    max_in: int


def intra_density(graph: AccessGraph) -> float:
    """Fraction of possible intra-iteration pairs that are zero-cost.

    1.0 for a complete graph over ``N`` nodes (``N*(N-1)/2`` pairs);
    0.0 for an edgeless graph or fewer than two nodes.
    """
    n = graph.n_nodes
    possible = n * (n - 1) // 2
    if possible == 0:
        return 0.0
    return len(graph.intra_edges) / possible


def degree_summary(graph: AccessGraph) -> DegreeSummary:
    """Degree statistics of the intra-iteration graph."""
    n = graph.n_nodes
    if n == 0:
        return DegreeSummary(0, 0.0, 0, 0, 0.0, 0)
    outs = [len(graph.successors(node)) for node in graph.nodes()]
    ins = [len(graph.predecessors(node)) for node in graph.nodes()]
    return DegreeSummary(
        min(outs), sum(outs) / n, max(outs),
        min(ins), sum(ins) / n, max(ins),
    )


def isolated_nodes(graph: AccessGraph) -> tuple[int, ...]:
    """Nodes with no intra-iteration edge at all.

    Each isolated node forces its own path in any cover of the
    intra-iteration graph, so ``len(isolated_nodes)`` is a (weak) lower
    bound ingredient for the path-cover size.
    """
    return tuple(node for node in graph.nodes()
                 if not graph.successors(node)
                 and not graph.predecessors(node))


def undirected_components(graph: AccessGraph) -> list[tuple[int, ...]]:
    """Connected components of the undirected intra-iteration graph.

    Paths cannot cross component boundaries, so the cover size is the sum
    of per-component cover sizes; components also bound merging locality.
    """
    n = graph.n_nodes
    seen = [False] * n
    components: list[tuple[int, ...]] = []
    for root in range(n):
        if seen[root]:
            continue
        stack = [root]
        seen[root] = True
        members = []
        while stack:
            node = stack.pop()
            members.append(node)
            for neighbor in (*graph.successors(node),
                             *graph.predecessors(node)):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    stack.append(neighbor)
        components.append(tuple(sorted(members)))
    return components
