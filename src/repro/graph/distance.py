"""Address distances between array accesses and the zero/unit cost model.

The paper's cost model (section 2): after an access through an address
register, the AGU can post-modify the register by any constant ``d`` with
``|d| <= M`` in parallel with the data path (zero cost).  A larger update
-- or re-pointing the register at an address whose distance is not a
compile-time constant, which for us means a different array or a
different index coefficient -- costs one extra instruction (unit cost).

Distances come in two flavours:

* *intra-iteration*: between two accesses of the same loop iteration.
* *wrap-around*: from a register's last access in iteration ``t`` to its
  first access in iteration ``t + 1``.  For accesses indexing with
  ``c*i + d`` and loop step ``S``, that distance is
  ``c*S + d_first - d_last``.

Both return ``None`` when the distance is not a compile-time constant.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.ir.types import ArrayAccess


def intra_distance(source: ArrayAccess, target: ArrayAccess) -> int | None:
    """Constant address distance ``target - source`` within an iteration.

    ``None`` when the accesses touch different arrays or index with
    different loop-variable coefficients (the distance then varies with
    the iteration or is unknown at compile time).

    Element sizes do not appear here: the paper's model is word-addressed
    (element size 1); the AGU code generator scales distances by the
    element size where needed.
    """
    if source.array != target.array:
        return None
    return source.index.distance_to(target.index)


def wrap_distance(last: ArrayAccess, first: ArrayAccess,
                  step: int) -> int | None:
    """Constant address distance from ``last`` (iteration ``t``) to
    ``first`` (iteration ``t + 1``) for a loop with the given step.

    ``None`` when the distance is not a compile-time constant.
    """
    if last.array != first.array:
        return None
    if last.coefficient != first.coefficient:
        return None
    return first.coefficient * step + first.offset - last.offset


def is_zero_cost(distance: int | None, modify_range: int) -> bool:
    """Whether a register can follow a ``distance`` update for free.

    A ``None`` (non-constant) distance is never free.
    """
    if modify_range < 0:
        raise GraphError(f"modify range must be >= 0, got {modify_range}")
    return distance is not None and abs(distance) <= modify_range

def transition_cost(distance: int | None, modify_range: int,
                    free_deltas: frozenset[int] = frozenset()) -> int:
    """Instruction cost of one register update: 0 if free, else 1.

    This is the paper's unit-cost model: any update outside the
    auto-modify range costs exactly one extra instruction, regardless of
    the magnitude (an ``ADAR``/``SBAR``-style add-immediate, or an
    address-register load when the distance is not constant).

    ``free_deltas`` extends the model for AGUs with *modify registers*
    (the MR extension): a constant update whose exact value has been
    preloaded into a modify register also rides along for free
    (``*(ARx)+MRj`` addressing).
    """
    if is_zero_cost(distance, modify_range):
        return 0
    if distance is not None and distance in free_deltas:
        return 0
    return 1
