"""The access graph ``G = (V, E)`` of the paper's section 2 / Figure 1.

Nodes are the positions ``0 .. N-1`` of the accesses ``a_1 .. a_N`` of
one loop iteration.  Two kinds of edges exist:

* *intra-iteration* edges ``(p, q)`` with ``p < q``: computing the
  address of ``a_{q+1}`` from ``a_{p+1}`` within one iteration is free
  (address distance within the auto-modify range ``M``).
* *inter-iteration* edges ``(q, p)`` (any ``p``, ``q``): a register whose
  last access in iteration ``t`` is ``a_{q+1}`` can reach ``a_{p+1}`` in
  iteration ``t + 1`` for free (wrap-around distance within ``M``).

A zero-cost allocation of all accesses to ``K`` registers corresponds to
covering the intra-iteration graph with ``K`` node-disjoint paths whose
wrap-around (last node back to first node) is also an inter-iteration
edge -- see :mod:`repro.pathcover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import GraphError
from repro.graph.distance import intra_distance, is_zero_cost, wrap_distance
from repro.ir.types import AccessPattern


@dataclass(frozen=True)
class GraphStats:
    """Size summary of an access graph."""

    n_nodes: int
    n_intra_edges: int
    n_inter_edges: int


class AccessGraph:
    """Zero-cost transition graph over one iteration's accesses.

    Parameters
    ----------
    pattern:
        The loop iteration's access sequence (carries the loop step).
    modify_range:
        The AGU auto-modify range ``M``.
    """

    def __init__(self, pattern: AccessPattern, modify_range: int):
        if modify_range < 0:
            raise GraphError(
                f"modify range must be >= 0, got {modify_range}")
        self._pattern = pattern
        self._modify_range = modify_range
        n = len(pattern)

        intra: set[tuple[int, int]] = set()
        successors: list[list[int]] = [[] for _ in range(n)]
        predecessors: list[list[int]] = [[] for _ in range(n)]
        for p in range(n):
            for q in range(p + 1, n):
                distance = intra_distance(pattern[p], pattern[q])
                if is_zero_cost(distance, modify_range):
                    intra.add((p, q))
                    successors[p].append(q)
                    predecessors[q].append(p)

        inter: set[tuple[int, int]] = set()
        for q in range(n):
            for p in range(n):
                distance = wrap_distance(pattern[q], pattern[p],
                                         pattern.step)
                if is_zero_cost(distance, modify_range):
                    inter.add((q, p))

        self._intra_edges = frozenset(intra)
        self._inter_edges = frozenset(inter)
        self._successors = tuple(tuple(s) for s in successors)
        self._predecessors = tuple(tuple(p) for p in predecessors)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def pattern(self) -> AccessPattern:
        """The access pattern the graph models."""
        return self._pattern

    @property
    def modify_range(self) -> int:
        """The auto-modify range M the edges were built with."""
        return self._modify_range

    @property
    def n_nodes(self) -> int:
        """Number of accesses (graph nodes)."""
        return len(self._pattern)

    def nodes(self) -> range:
        """Node ids in program order (0-based access positions)."""
        return range(self.n_nodes)

    def label(self, node: int) -> str:
        """Paper-style label ``a_k`` of a node."""
        return self._pattern.label(node)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    @property
    def intra_edges(self) -> frozenset[tuple[int, int]]:
        """Zero-cost intra-iteration edges ``(p, q)``, ``p < q``."""
        return self._intra_edges

    @property
    def inter_edges(self) -> frozenset[tuple[int, int]]:
        """Zero-cost inter-iteration (wrap-around) edges ``(q, p)``."""
        return self._inter_edges

    def has_intra_edge(self, p: int, q: int) -> bool:
        """Whether ``a_{p+1} -> a_{q+1}`` is free within an iteration."""
        return (p, q) in self._intra_edges

    def has_inter_edge(self, q: int, p: int) -> bool:
        """Whether wrap-around ``a_{q+1} -> a_{p+1}'`` is free."""
        return (q, p) in self._inter_edges

    def successors(self, node: int) -> tuple[int, ...]:
        """Intra-iteration successors of ``node`` (later positions)."""
        self._check_node(node)
        return self._successors[node]

    def predecessors(self, node: int) -> tuple[int, ...]:
        """Intra-iteration predecessors of ``node`` (earlier positions)."""
        self._check_node(node)
        return self._predecessors[node]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise GraphError(
                f"node {node} out of range 0..{self.n_nodes - 1}")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Node/edge counts."""
        return GraphStats(self.n_nodes, len(self._intra_edges),
                          len(self._inter_edges))

    def paths_from(self, node: int) -> Iterator[tuple[int, ...]]:
        """Enumerate all simple intra-iteration paths starting at ``node``.

        Exponential in general; intended for tests and tiny instances.
        """
        self._check_node(node)
        stack: list[tuple[int, ...]] = [(node,)]
        while stack:
            path = stack.pop()
            yield path
            for succ in self._successors[path[-1]]:
                stack.append(path + (succ,))

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"AccessGraph(n={stats.n_nodes}, "
                f"intra={stats.n_intra_edges}, inter={stats.n_inter_edges}, "
                f"M={self._modify_range})")
