"""The access graph ``G = (V, E)`` of the paper's section 2 / Figure 1.

Nodes are the positions ``0 .. N-1`` of the accesses ``a_1 .. a_N`` of
one loop iteration.  Two kinds of edges exist:

* *intra-iteration* edges ``(p, q)`` with ``p < q``: computing the
  address of ``a_{q+1}`` from ``a_{p+1}`` within one iteration is free
  (address distance within the auto-modify range ``M``).
* *inter-iteration* edges ``(q, p)`` (any ``p``, ``q``): a register whose
  last access in iteration ``t`` is ``a_{q+1}`` can reach ``a_{p+1}`` in
  iteration ``t + 1`` for free (wrap-around distance within ``M``).

A zero-cost allocation of all accesses to ``K`` registers corresponds to
covering the intra-iteration graph with ``K`` node-disjoint paths whose
wrap-around (last node back to first node) is also an inter-iteration
edge -- see :mod:`repro.pathcover`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator

from repro.errors import GraphError
from repro.ir.types import AccessPattern


@dataclass(frozen=True)
class GraphStats:
    """Size summary of an access graph."""

    n_nodes: int
    n_intra_edges: int
    n_inter_edges: int


class AccessGraph:
    """Zero-cost transition graph over one iteration's accesses.

    Parameters
    ----------
    pattern:
        The loop iteration's access sequence (carries the loop step).
    modify_range:
        The AGU auto-modify range ``M``.
    """

    def __init__(self, pattern: AccessPattern, modify_range: int):
        if modify_range < 0:
            raise GraphError(
                f"modify range must be >= 0, got {modify_range}")
        self._pattern = pattern
        self._modify_range = modify_range
        n = len(pattern)

        # Distances are compile-time constants only inside a group of
        # accesses to the same array with the same index coefficient
        # (intra distances additionally require the same loop variable
        # when the coefficient is non-zero).  Edges therefore only ever
        # connect group members whose offsets fall within a +-M window,
        # which a per-group offset sort + bisect enumerates in
        # O(E + n log n) instead of the naive O(n^2) distance tests.
        intra_groups: dict[tuple, list[int]] = {}
        inter_groups: dict[tuple[str, int], list[int]] = {}
        offsets = [0] * n
        for position, access in enumerate(pattern):
            offsets[position] = access.offset
            coefficient = access.coefficient
            variable = access.index.var if coefficient != 0 else None
            intra_groups.setdefault(
                (access.array, coefficient, variable), []).append(position)
            inter_groups.setdefault(
                (access.array, coefficient), []).append(position)

        successors: list[list[int]] = [[] for _ in range(n)]
        predecessors: list[list[int]] = [[] for _ in range(n)]
        for positions in intra_groups.values():
            by_offset = sorted((offsets[p], p) for p in positions)
            sorted_offsets = [offset for offset, _ in by_offset]
            for offset, p in by_offset:
                low = bisect_left(sorted_offsets, offset - modify_range)
                high = bisect_right(sorted_offsets, offset + modify_range)
                for index in range(low, high):
                    q = by_offset[index][1]
                    if q > p:
                        successors[p].append(q)
                        predecessors[q].append(p)

        inter: set[tuple[int, int]] = set()
        step = pattern.step
        for (_array, coefficient), positions in inter_groups.items():
            by_offset = sorted((offsets[p], p) for p in positions)
            sorted_offsets = [offset for offset, _ in by_offset]
            # wrap distance q -> p is c*S + offset_p - offset_q; it is
            # free iff offset_p lands in [offset_q - c*S -+ M].
            home = coefficient * step
            for offset, q in by_offset:
                low = bisect_left(sorted_offsets,
                                  offset - home - modify_range)
                high = bisect_right(sorted_offsets,
                                    offset - home + modify_range)
                for index in range(low, high):
                    inter.add((q, by_offset[index][1]))

        intra: list[tuple[int, int]] = []
        for p in range(n):
            successors[p].sort()
            predecessors[p].sort()
            for q in successors[p]:
                intra.append((p, q))

        self._intra_edges = frozenset(intra)
        self._inter_edges = frozenset(inter)
        self._successors = tuple(tuple(s) for s in successors)
        self._predecessors = tuple(tuple(p) for p in predecessors)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def pattern(self) -> AccessPattern:
        """The access pattern the graph models."""
        return self._pattern

    @property
    def modify_range(self) -> int:
        """The auto-modify range M the edges were built with."""
        return self._modify_range

    @property
    def n_nodes(self) -> int:
        """Number of accesses (graph nodes)."""
        return len(self._pattern)

    def nodes(self) -> range:
        """Node ids in program order (0-based access positions)."""
        return range(self.n_nodes)

    def label(self, node: int) -> str:
        """Paper-style label ``a_k`` of a node."""
        return self._pattern.label(node)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    @property
    def intra_edges(self) -> frozenset[tuple[int, int]]:
        """Zero-cost intra-iteration edges ``(p, q)``, ``p < q``."""
        return self._intra_edges

    @property
    def inter_edges(self) -> frozenset[tuple[int, int]]:
        """Zero-cost inter-iteration (wrap-around) edges ``(q, p)``."""
        return self._inter_edges

    def has_intra_edge(self, p: int, q: int) -> bool:
        """Whether ``a_{p+1} -> a_{q+1}`` is free within an iteration."""
        return (p, q) in self._intra_edges

    def has_inter_edge(self, q: int, p: int) -> bool:
        """Whether wrap-around ``a_{q+1} -> a_{p+1}'`` is free."""
        return (q, p) in self._inter_edges

    def successors(self, node: int) -> tuple[int, ...]:
        """Intra-iteration successors of ``node`` (later positions)."""
        self._check_node(node)
        return self._successors[node]

    def predecessors(self, node: int) -> tuple[int, ...]:
        """Intra-iteration predecessors of ``node`` (earlier positions)."""
        self._check_node(node)
        return self._predecessors[node]

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise GraphError(
                f"node {node} out of range 0..{self.n_nodes - 1}")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def stats(self) -> GraphStats:
        """Node/edge counts."""
        return GraphStats(self.n_nodes, len(self._intra_edges),
                          len(self._inter_edges))

    def paths_from(self, node: int) -> Iterator[tuple[int, ...]]:
        """Enumerate all simple intra-iteration paths starting at ``node``.

        Exponential in general; intended for tests and tiny instances.
        """
        self._check_node(node)
        stack: list[tuple[int, ...]] = [(node,)]
        while stack:
            path = stack.pop()
            yield path
            for succ in self._successors[path[-1]]:
                stack.append(path + (succ,))

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"AccessGraph(n={stats.n_nodes}, "
                f"intra={stats.n_intra_edges}, inter={stats.n_inter_edges}, "
                f"M={self._modify_range})")


@lru_cache(maxsize=512)
def cached_access_graph(pattern: AccessPattern,
                        modify_range: int) -> AccessGraph:
    """A process-wide memoized :class:`AccessGraph` constructor.

    Experiment grids evaluate the same ``(pattern, M)`` pair several
    times per point (lower bound, greedy cover, branch-and-bound, cost
    audits), and :class:`AccessGraph` is immutable once built -- so the
    hot paths share one instance per key instead of re-running edge
    construction.  Patterns are frozen dataclasses, hence hashable;
    pool workers each hold their own cache.

    Use plain :class:`AccessGraph` when measuring construction itself
    or when mutating experiment internals (never the graph) matters.
    """
    return AccessGraph(pattern, modify_range)
