"""Access-graph model of a loop's array accesses (paper section 2).

* :mod:`repro.graph.distance` -- the address-distance and transition-cost
  model that induces zero-cost/unit-cost edges.
* :mod:`repro.graph.access_graph` -- the graph ``G = (V, E)`` of the
  paper's Figure 1, including inter-iteration (wrap-around) edges.
* :mod:`repro.graph.dot` -- Graphviz/ASCII rendering.
* :mod:`repro.graph.properties` -- structural statistics.
"""

from repro.graph.access_graph import AccessGraph
from repro.graph.distance import (
    intra_distance,
    is_zero_cost,
    transition_cost,
    wrap_distance,
)
from repro.graph.dot import graph_to_ascii, graph_to_dot

__all__ = [
    "AccessGraph",
    "graph_to_ascii",
    "graph_to_dot",
    "intra_distance",
    "is_zero_cost",
    "transition_cost",
    "wrap_distance",
]
