"""Rendering of access graphs: Graphviz DOT text and a plain-ASCII view.

No external dependency is required; the DOT output can be fed to
``dot -Tpng`` where available, and the ASCII view reproduces the
adjacency structure of the paper's Figure 1 in terminal-friendly form.
"""

from __future__ import annotations

from repro.graph.access_graph import AccessGraph


def graph_to_dot(graph: AccessGraph, name: str = "access_graph",
                 include_inter: bool = False) -> str:
    """Graphviz DOT text for an access graph.

    Intra-iteration edges are solid; inter-iteration (wrap-around) edges,
    included on request, are dashed, as is conventional for cross-
    iteration dependences.
    """
    pattern = graph.pattern
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for node in graph.nodes():
        access = pattern[node]
        lines.append(
            f'  n{node} [label="{graph.label(node)}\\n{access}"];')
    for p, q in sorted(graph.intra_edges):
        lines.append(f"  n{p} -> n{q};")
    if include_inter:
        for q, p in sorted(graph.inter_edges):
            lines.append(f'  n{q} -> n{p} [style=dashed, label="wrap"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def graph_to_ascii(graph: AccessGraph, include_inter: bool = False) -> str:
    """Terminal-friendly adjacency listing of an access graph."""
    pattern = graph.pattern
    width = max((len(graph.label(node)) for node in graph.nodes()),
                default=1)
    lines = [f"AccessGraph  N={graph.n_nodes}  M={graph.modify_range}  "
             f"step={pattern.step}"]
    for node in graph.nodes():
        succs = ", ".join(graph.label(s) for s in graph.successors(node))
        lines.append(f"  {graph.label(node):<{width}}  {pattern[node]!s:<12}"
                     f" -> {succs if succs else '(none)'}")
    if include_inter:
        lines.append("  wrap-around edges:")
        for q, p in sorted(graph.inter_edges):
            lines.append(f"    {graph.label(q)} ~> {graph.label(p)}'")
    return "\n".join(lines) + "\n"
