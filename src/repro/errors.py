"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class IrError(ReproError):
    """Invalid intermediate-representation construction or use."""


class ParseError(IrError):
    """Raised by the kernel frontend on malformed source text.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            message = f"{location}: {message}"
        super().__init__(message)


class LayoutError(IrError):
    """Inconsistent memory-layout construction (overlaps, unknown arrays)."""


class GraphError(ReproError):
    """Invalid access-graph construction or query."""


class PathCoverError(ReproError):
    """Invalid path or path-cover construction."""


class InfeasibleZeroCostCover(PathCoverError):
    """No zero-cost path cover exists for the given modify range.

    This happens exactly when the auto-modify range ``M`` is smaller than
    the effective per-iteration address step of some access (for the
    paper's model, when ``M < step``): even a register dedicated to a
    single access cannot follow it across iterations for free.
    """


class SearchBudgetExceeded(PathCoverError):
    """The branch-and-bound search exceeded its configured node budget."""


class AllocationError(ReproError):
    """The register allocator was asked for something impossible."""


class CodegenError(ReproError):
    """Address code generation failed (inconsistent allocation input)."""


class SimulationError(ReproError):
    """The AGU simulator detected an incorrect address stream."""


class OffsetAssignmentError(ReproError):
    """Invalid offset-assignment (SOA/GOA) input or result."""


class WorkloadError(ReproError):
    """Invalid workload-generator configuration."""


class ExperimentError(ReproError):
    """Invalid experiment configuration or inconsistent results."""


class BatchError(ReproError):
    """Invalid batch job, cache, or engine configuration -- or a job
    that failed inside a batch run.

    Attributes
    ----------
    job_name, digest:
        Set when the error wraps one failing job of a batch: the job's
        display name and its content digest (the cache key), so callers
        can pinpoint -- and re-run or exclude -- the work unit that
        failed.  When a whole worker *process* dies
        (``BrokenProcessPool``), the named job is merely the one whose
        future surfaced the breakage; the actual culprit may be any
        job that was in flight (the message says so).  ``None`` for
        configuration errors.
    """

    def __init__(self, message: str, *, job_name: str | None = None,
                 digest: str | None = None):
        super().__init__(message)
        self.job_name = job_name
        self.digest = digest
