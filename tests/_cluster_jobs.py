"""Shared helpers of the cluster test suites: picklable jobs and the
in-process thread-fleet topology.

The job classes live in their own importable module (not inside a test
file) so that subprocess ``repro-agu worker`` processes -- whose
``PYTHONPATH`` the tests extend with this directory -- can unpickle
them by reference, exactly like a real deployment unpickles
``repro.batch`` job classes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.batch.cluster import JobServer, Worker
from repro.batch.digest import job_digest
from repro.batch.jobs import CacheableResult


@contextmanager
def thread_fleet(n_workers: int = 2, **server_kwargs):
    """A :class:`JobServer` plus ``n_workers`` in-process worker
    threads -- real TCP and framing, in-thread job execution."""
    with JobServer(**server_kwargs) as server:
        workers = [Worker(*server.address, poll=0.05)
                   for _ in range(n_workers)]
        threads = [threading.Thread(target=worker.run, daemon=True)
                   for worker in workers]
        for thread in threads:
            thread.start()
        try:
            yield server
        finally:
            for worker in workers:
                worker.stop()
            for thread in threads:
                thread.join(timeout=10.0)


@dataclass(frozen=True)
class TinyResult(CacheableResult):
    """A minimal engine-compatible result (cacheable, picklable)."""

    name: str
    digest: str
    value: int
    from_cache: bool = False


@dataclass(frozen=True)
class TinyJob:
    """A trivial job: returns ``value`` doubled, instantly."""

    name: str
    value: int = 1

    result_type = TinyResult

    def cache_key(self) -> dict:
        # Like the real job types: the display name stays out of the
        # digest, so same-content jobs share one cache entry.
        return {"v": 0, "cluster-tiny": self.value}

    def execute(self) -> TinyResult:
        return TinyResult(name=self.name, digest=job_digest(self),
                          value=2 * self.value)


@dataclass(frozen=True)
class SlowOnceJob:
    """Sleeps on its *first* execution only (signalled via a marker
    file), so a test can kill the worker mid-job and let the requeued
    lease complete quickly elsewhere."""

    name: str
    marker: str
    seconds: float = 60.0
    value: int = 7

    result_type = TinyResult

    def cache_key(self) -> dict:
        return {"v": 0, "cluster-slow-once": self.name,
                "value": self.value}

    def execute(self) -> TinyResult:
        marker = Path(self.marker)
        if not marker.exists():
            marker.write_text("first lease")
            time.sleep(self.seconds)  # the test kills this worker
        return TinyResult(name=self.name, digest=job_digest(self),
                          value=self.value)


@dataclass(frozen=True)
class HugeResultJob:
    """Succeeds, but with a result too large for one protocol frame
    (under a test-shrunk ``MAX_FRAME_BYTES``)."""

    name: str
    size: int = 100_000

    result_type = TinyResult

    def cache_key(self) -> dict:
        return {"v": 0, "cluster-huge": self.size}

    def execute(self) -> str:
        return "x" * self.size


@dataclass(frozen=True)
class CrashingJob:
    """A job whose execution raises on every worker that leases it."""

    name: str

    result_type = TinyResult

    def cache_key(self) -> dict:
        return {"v": 0, "cluster-crash": self.name}

    def execute(self) -> TinyResult:
        raise RuntimeError(f"injected crash in {self.name}")
