"""Golden-output tests: exact rendered artifacts for the paper example.

These freeze the user-visible text output (graph rendering, assembly
listing, allocation summary) so accidental format or semantics drift is
caught immediately.
"""

import textwrap

from repro.agu.codegen import generate_address_code
from repro.agu.listing import program_listing
from repro.agu.model import AguSpec
from repro.core.allocator import AddressRegisterAllocator
from repro.graph.access_graph import AccessGraph
from repro.graph.dot import graph_to_ascii, graph_to_dot
from repro.ir.builder import pattern_from_offsets

PAPER = [1, 0, 2, -1, 1, 0, -2]


class TestGraphRendering:
    def test_ascii_exact(self):
        graph = AccessGraph(pattern_from_offsets(PAPER), 1)
        expected = textwrap.dedent("""\
            AccessGraph  N=7  M=1  step=1
              a_1  A[i+1]       -> a_2, a_3, a_5, a_6
              a_2  A[i]         -> a_4, a_5, a_6
              a_3  A[i+2]       -> a_5
              a_4  A[i-1]       -> a_6, a_7
              a_5  A[i+1]       -> a_6
              a_6  A[i]         -> (none)
              a_7  A[i-2]       -> (none)
        """)
        assert graph_to_ascii(graph) == expected

    def test_dot_exact_prefix(self):
        graph = AccessGraph(pattern_from_offsets(PAPER), 1)
        dot = graph_to_dot(graph)
        lines = dot.splitlines()
        assert lines[0] == "digraph access_graph {"
        assert lines[1] == "  rankdir=LR;"
        assert '  n0 [label="a_1\\nA[i+1]"];' in lines
        assert "  n0 -> n1;" in lines
        assert lines[-1] == "}"


class TestListing:
    def test_k2_listing_exact(self):
        pattern = pattern_from_offsets(PAPER)
        allocator = AddressRegisterAllocator(AguSpec(2, 1, "tight_k2"))
        result = allocator.allocate(pattern)
        program = generate_address_code(pattern, result.cover,
                                        allocator.spec)
        listing = program_listing(program)
        instructions = [line.split(";")[0].strip()
                        for line in listing.splitlines()
                        if line.startswith("    ")]
        assert instructions == [
            "LDAR  AR0, &A[i+1]",
            "LDAR  AR1, &A[i+0]",
            "USE   *(AR0)+1",
            "USE   *(AR1)-1",
            "USE   *(AR0)-1",
            "USE   *(AR1)+1",
            "USE   *(AR0)",
            "SBAR  AR0, #3",
            "USE   *(AR1)+1",
            "USE   *(AR0)",
            "ADAR  AR0, #4",
        ]


class TestSummary:
    def test_k2_summary_exact(self):
        pattern = pattern_from_offsets(PAPER)
        allocator = AddressRegisterAllocator(AguSpec(2, 1, "tight_k2"))
        summary = allocator.allocate(pattern).summary()
        expected = textwrap.dedent("""\
            allocation of 7 accesses on tight_k2(K=2, M=1)
              strategy:        best_pair
              cost model:      steady_state
              K~ (virtual):    3 (exact)
              registers used:  2
              unit-cost/iter:  2
                AR0: a_1, a_3, a_5, a_7
                AR1: a_2, a_4, a_6
              merges performed: 1
                (a_1, a_3, a_5) (+) (a_7) -> (a_1, a_3, a_5, a_7) [C=2]""")
        assert summary == expected
