"""The repro-lint framework and every project rule, fixture-tested.

Each rule gets at least one true-positive fixture (the violation is
reported) and one true-negative (the compliant spelling is not);
suppression comments and the JSON reporter are round-tripped; and the
repository itself must lint clean -- the same gate CI's
static-analysis job enforces, so a regression fails both identically.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "tools"))

from lint.reporters import (  # noqa: E402
    parse_json_report,
    render_json,
    render_text,
)
from lint.runner import PARSE_ERROR, lint_paths, lint_source  # noqa: E402

#: The relpath that triggers the strict broad-except tier.
ENGINE_PATH = "src/repro/batch/engine.py"


def rule_ids(result) -> list[str]:
    return [diag.rule_id for diag in result.diagnostics]


# ----------------------------------------------------------------------
# IO-ENCODING
# ----------------------------------------------------------------------
class TestIoEncoding:
    def test_read_text_without_encoding_is_flagged(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert rule_ids(result) == ["IO-ENCODING"]
        assert result.diagnostics[0].line == 2

    def test_explicit_encoding_is_clean(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text(encoding='utf-8')\n"
            "Path('y.json').write_text(text, encoding='utf-8')\n"
            "with open('z.txt', encoding='utf-8') as handle:\n"
            "    handle.read()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean

    def test_binary_mode_open_is_clean(self):
        result = lint_source(
            "with open('x.bin', 'rb') as handle:\n"
            "    handle.read()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean

    def test_text_mode_tempfile_is_flagged(self):
        result = lint_source(
            "import tempfile\n"
            "handle = tempfile.NamedTemporaryFile('w', delete=False)\n",
            rule_ids=["IO-ENCODING"])
        assert rule_ids(result) == ["IO-ENCODING"]


# ----------------------------------------------------------------------
# BROAD-EXCEPT
# ----------------------------------------------------------------------
class TestBroadExcept:
    def test_bare_except_is_flagged_everywhere(self):
        result = lint_source(
            "try:\n    work()\nexcept:\n    pass\n",
            relpath="src/repro/analysis/report.py",
            rule_ids=["BROAD-EXCEPT"])
        assert rule_ids(result) == ["BROAD-EXCEPT"]

    def test_swallowed_exception_in_engine_is_flagged(self):
        result = lint_source(
            "try:\n    work()\nexcept Exception:\n    pass\n",
            relpath=ENGINE_PATH, rule_ids=["BROAD-EXCEPT"])
        assert rule_ids(result) == ["BROAD-EXCEPT"]

    def test_swallowed_exception_outside_engine_is_clean(self):
        result = lint_source(
            "try:\n    work()\nexcept Exception:\n    pass\n",
            relpath="tools/bench_trajectory.py",
            rule_ids=["BROAD-EXCEPT"])
        assert result.clean

    def test_wrap_and_rethrow_is_clean(self):
        result = lint_source(
            "try:\n"
            "    work()\n"
            "except Exception as error:\n"
            "    raise JobFailure(0, error) from error\n",
            relpath=ENGINE_PATH, rule_ids=["BROAD-EXCEPT"])
        assert result.clean

    def test_base_exception_needs_bare_reraise(self):
        flagged = lint_source(
            "try:\n"
            "    work()\n"
            "except BaseException as error:\n"
            "    raise RuntimeError('wrapped') from error\n",
            rule_ids=["BROAD-EXCEPT"])
        assert rule_ids(flagged) == ["BROAD-EXCEPT"]
        clean = lint_source(
            "try:\n"
            "    work()\n"
            "except BaseException:\n"
            "    cleanup()\n"
            "    raise\n",
            rule_ids=["BROAD-EXCEPT"])
        assert clean.clean


# ----------------------------------------------------------------------
# SOCKET-HYGIENE
# ----------------------------------------------------------------------
class TestSocketHygiene:
    def test_unclosed_socket_is_flagged(self):
        result = lint_source(
            "import socket\n"
            "def talk(host, port):\n"
            "    sock = socket.create_connection((host, port))\n"
            "    sock.sendall(b'x')\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert rule_ids(result) == ["SOCKET-HYGIENE"]

    def test_finally_close_is_clean(self):
        result = lint_source(
            "import socket\n"
            "def talk(host, port):\n"
            "    sock = socket.create_connection((host, port))\n"
            "    try:\n"
            "        sock.sendall(b'x')\n"
            "    finally:\n"
            "        sock.close()\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert result.clean

    def test_returned_socket_is_clean(self):
        result = lint_source(
            "import socket\n"
            "def connect(host, port):\n"
            "    sock = socket.create_connection((host, port))\n"
            "    sock.settimeout(1.0)\n"
            "    return sock\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert result.clean

    def test_attribute_handoff_is_clean(self):
        result = lint_source(
            "import socket\n"
            "class Stream:\n"
            "    def _open(self, host, port):\n"
            "        sock = socket.create_connection((host, port))\n"
            "        self._sock = sock\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert result.clean


# ----------------------------------------------------------------------
# PICKLE-JOB
# ----------------------------------------------------------------------
class TestPickleJob:
    def test_instance_lambda_is_flagged(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, scale):\n"
            "        self.transform = lambda x: x * scale\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_local_closure_is_flagged(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, scale):\n"
            "        def transform(x):\n"
            "            return x * scale\n"
            "        self.transform = transform\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_open_handle_is_flagged(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, path):\n"
            "        self.handle = open(path, encoding='utf-8')\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_module_level_mutable_alias_is_flagged(self):
        result = lint_source(
            "_REGISTRY = {}\n"
            "class GridJob(BatchJob):\n"
            "    def __init__(self):\n"
            "        self.registry = _REGISTRY\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_subclass_chain_is_tracked(self):
        result = lint_source(
            "class Base(StatisticalGridJob):\n"
            "    pass\n"
            "class Derived(Base):\n"
            "    def __init__(self):\n"
            "        self.fn = lambda: 1\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_plain_fields_and_non_job_classes_are_clean(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, points, seed):\n"
            "        self.points = tuple(points)\n"
            "        self.seed = seed\n"
            "class Helper:\n"
            "    def __init__(self):\n"
            "        self.fn = lambda: 1\n",  # not a job class
            rule_ids=["PICKLE-JOB"])
        assert result.clean


# ----------------------------------------------------------------------
# DIGEST-DETERMINISM
# ----------------------------------------------------------------------
class TestDigestDeterminism:
    def test_clock_in_digest_payload_is_flagged(self):
        result = lint_source(
            "import time\n"
            "from repro.batch.digest import canonical\n"
            "def key(job):\n"
            "    return canonical({'job': job, 'at': time.time()})\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_tainted_local_is_flagged(self):
        result = lint_source(
            "import time\n"
            "from repro.batch.digest import canonical\n"
            "def key(job):\n"
            "    stamp = time.time()\n"
            "    return canonical({'job': job, 'at': stamp})\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_cache_key_returning_id_is_flagged(self):
        result = lint_source(
            "class GridJob:\n"
            "    def cache_key(self):\n"
            "        return f'{id(self)}'\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_set_order_materialization_is_flagged(self):
        result = lint_source(
            "from repro.batch.digest import canonical\n"
            "def key(names):\n"
            "    return canonical({'names': list(set(names))})\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_sorted_set_and_clock_outside_digest_are_clean(self):
        result = lint_source(
            "import time\n"
            "from repro.batch.digest import canonical\n"
            "def key(names, job):\n"
            "    started = time.perf_counter()\n"  # timing, not keying
            "    digest = canonical({'names': sorted(set(names))})\n"
            "    elapsed = time.perf_counter() - started\n"
            "    return digest, elapsed\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert result.clean


# ----------------------------------------------------------------------
# LOCK-DISCIPLINE
# ----------------------------------------------------------------------
LOCKED_CLASS_HEADER = (
    "import threading\n"
    "class Server:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._count = 0\n"
)


class TestLockDiscipline:
    def test_unlocked_read_of_shared_attr_is_flagged(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def peek(self):\n"
            "        return self._count\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert rule_ids(result) == ["LOCK-DISCIPLINE"]
        assert "_count" in result.diagnostics[0].message

    def test_locked_access_is_clean(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self._count\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_config_attrs_are_not_shared(self):
        # host/port are written only in __init__: immutable-after-
        # publish, free to read anywhere.
        result = lint_source(
            "import threading\n"
            "class Server:\n"
            "    def __init__(self, host, port):\n"
            "        self._lock = threading.Lock()\n"
            "        self.host = host\n"
            "        self.port = port\n"
            "    def endpoint(self):\n"
            "        return f'{self.host}:{self.port}'\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_locked_suffix_methods_are_exempt(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
            "    def _bump_locked(self):\n"
            "        self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_event_attrs_are_exempt(self):
        result = lint_source(
            "import threading\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._serving = threading.Event()\n"
            "        self._count = 0\n"
            "    def stop(self):\n"
            "        self._serving.clear()\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_lockless_classes_are_skipped(self):
        result = lint_source(
            "class Accumulator:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def bump(self):\n"
            "        self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean


# ----------------------------------------------------------------------
# DOCSTRING-PUBLIC
# ----------------------------------------------------------------------
class TestDocstringPublic:
    def test_missing_public_docstring_in_strict_package_is_flagged(self):
        result = lint_source(
            '"""Module docstring."""\n'
            "def compile_batch(jobs):\n"
            "    return jobs\n",
            relpath="src/repro/batch/newmod.py",
            rule_ids=["DOCSTRING-PUBLIC"])
        # Both tiers fire: the strict-package miss and (at 1/2 names
        # documented) the tree-wide coverage floor.
        assert set(rule_ids(result)) == {"DOCSTRING-PUBLIC"}
        assert any("compile_batch" in diag.message
                   for diag in result.diagnostics)
        assert any("floor" in diag.message
                   for diag in result.diagnostics)

    def test_documented_module_is_clean(self):
        result = lint_source(
            '"""Module docstring."""\n'
            "def compile_batch(jobs):\n"
            '    """Compile the batch."""\n'
            "    return jobs\n"
            "def _private(jobs):\n"
            "    return jobs\n",
            relpath="src/repro/batch/newmod.py",
            rule_ids=["DOCSTRING-PUBLIC"])
        assert result.clean

    def test_non_source_files_do_not_participate(self):
        result = lint_source(
            "def helper():\n    return 1\n",
            relpath="tools/somescript.py",
            rule_ids=["DOCSTRING-PUBLIC"])
        assert result.clean


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SOURCE = ("from pathlib import Path\n"
              "text = Path('x.json').read_text()\n")

    def test_trailing_disable_suppresses_own_line(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()"
            "  # repro-lint: disable=IO-ENCODING -- fixture\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean
        assert result.n_suppressed == 1

    def test_standalone_disable_suppresses_next_line(self):
        result = lint_source(
            "from pathlib import Path\n"
            "# repro-lint: disable=IO-ENCODING -- fixture\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean
        assert result.n_suppressed == 1

    def test_disable_file_suppresses_whole_file(self):
        result = lint_source(
            "# repro-lint: disable-file=IO-ENCODING -- fixture\n"
            "from pathlib import Path\n"
            "a = Path('x.json').read_text()\n"
            "b = Path('y.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean
        assert result.n_suppressed == 2

    def test_unrelated_rule_id_does_not_suppress(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()"
            "  # repro-lint: disable=BROAD-EXCEPT -- wrong rule\n",
            rule_ids=["IO-ENCODING"])
        assert rule_ids(result) == ["IO-ENCODING"]

    def test_all_sentinel_suppresses_everything(self):
        result = lint_source(
            "from pathlib import Path\n"
            "# repro-lint: disable=all -- fixture\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean

    def test_parse_errors_cannot_be_suppressed(self):
        result = lint_source(
            "# repro-lint: disable-file=all -- nice try\n"
            "def broken(:\n")
        assert rule_ids(result) == [PARSE_ERROR]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _result(self):
        return lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])

    def test_json_report_round_trips(self):
        result = self._result()
        report = render_json(result.diagnostics, n_files=result.n_files,
                             n_suppressed=result.n_suppressed)
        parsed = parse_json_report(report)
        assert parsed == result.diagnostics
        payload = json.loads(report)
        assert payload["tool"] == "repro-lint"
        assert payload["files_checked"] == 1
        assert payload["diagnostics"][0]["rule_id"] == "IO-ENCODING"

    def test_schema_mismatch_is_rejected(self):
        report = json.dumps({"schema": 999, "diagnostics": []})
        with pytest.raises(ValueError):
            parse_json_report(report)

    def test_text_report_carries_location_and_summary(self):
        result = self._result()
        text = render_text(result.diagnostics, n_files=result.n_files,
                           n_suppressed=result.n_suppressed)
        assert "fixture.py:2:" in text
        assert "IO-ENCODING" in text
        assert "1 issue(s)" in text

    def test_clean_text_report_says_clean(self):
        text = render_text([], n_files=3, n_suppressed=2)
        assert "clean" in text
        assert "2 finding(s) suppressed" in text


# ----------------------------------------------------------------------
# The repository itself
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_default_targets_lint_clean(self):
        result = lint_paths()
        assert result.clean, "\n".join(
            f"{diag.location()}: {diag.rule_id} {diag.message}"
            for diag in result.diagnostics)
        assert result.n_files > 50

    def test_cli_front_door_exits_zero(self):
        completed = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "run_lint.py"),
             "--format", "json"],
            capture_output=True, text=True, timeout=300)
        assert completed.returncode == 0, completed.stdout
        payload = json.loads(completed.stdout)
        assert payload["diagnostics"] == []

    def test_docstring_shim_still_reports_coverage(self):
        completed = subprocess.run(
            [sys.executable,
             str(ROOT / "tools" / "check_docstrings.py")],
            capture_output=True, text=True, timeout=300)
        assert completed.returncode == 0, completed.stdout
        assert "public docstring coverage" in completed.stdout
