"""The repro-lint framework and every project rule, fixture-tested.

Each rule gets at least one true-positive fixture (the violation is
reported) and one true-negative (the compliant spelling is not);
suppression comments and the JSON reporter are round-tripped; and the
repository itself must lint clean -- the same gate CI's
static-analysis job enforces, so a regression fails both identically.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "tools"))

from lint.reporters import (  # noqa: E402
    parse_json_report,
    render_json,
    render_text,
)
from lint.runner import (  # noqa: E402
    PARSE_ERROR,
    lint_paths,
    lint_source,
    lint_sources,
)

#: The relpath that triggers the strict broad-except tier.
ENGINE_PATH = "src/repro/batch/engine.py"


def rule_ids(result) -> list[str]:
    return [diag.rule_id for diag in result.diagnostics]


# ----------------------------------------------------------------------
# IO-ENCODING
# ----------------------------------------------------------------------
class TestIoEncoding:
    def test_read_text_without_encoding_is_flagged(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert rule_ids(result) == ["IO-ENCODING"]
        assert result.diagnostics[0].line == 2

    def test_explicit_encoding_is_clean(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text(encoding='utf-8')\n"
            "Path('y.json').write_text(text, encoding='utf-8')\n"
            "with open('z.txt', encoding='utf-8') as handle:\n"
            "    handle.read()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean

    def test_binary_mode_open_is_clean(self):
        result = lint_source(
            "with open('x.bin', 'rb') as handle:\n"
            "    handle.read()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean

    def test_text_mode_tempfile_is_flagged(self):
        result = lint_source(
            "import tempfile\n"
            "handle = tempfile.NamedTemporaryFile('w', delete=False)\n",
            rule_ids=["IO-ENCODING"])
        assert rule_ids(result) == ["IO-ENCODING"]


# ----------------------------------------------------------------------
# BROAD-EXCEPT
# ----------------------------------------------------------------------
class TestBroadExcept:
    def test_bare_except_is_flagged_everywhere(self):
        result = lint_source(
            "try:\n    work()\nexcept:\n    pass\n",
            relpath="src/repro/analysis/report.py",
            rule_ids=["BROAD-EXCEPT"])
        assert rule_ids(result) == ["BROAD-EXCEPT"]

    def test_swallowed_exception_in_engine_is_flagged(self):
        result = lint_source(
            "try:\n    work()\nexcept Exception:\n    pass\n",
            relpath=ENGINE_PATH, rule_ids=["BROAD-EXCEPT"])
        assert rule_ids(result) == ["BROAD-EXCEPT"]

    def test_swallowed_exception_outside_engine_is_clean(self):
        result = lint_source(
            "try:\n    work()\nexcept Exception:\n    pass\n",
            relpath="tools/bench_trajectory.py",
            rule_ids=["BROAD-EXCEPT"])
        assert result.clean

    def test_wrap_and_rethrow_is_clean(self):
        result = lint_source(
            "try:\n"
            "    work()\n"
            "except Exception as error:\n"
            "    raise JobFailure(0, error) from error\n",
            relpath=ENGINE_PATH, rule_ids=["BROAD-EXCEPT"])
        assert result.clean

    def test_base_exception_needs_bare_reraise(self):
        flagged = lint_source(
            "try:\n"
            "    work()\n"
            "except BaseException as error:\n"
            "    raise RuntimeError('wrapped') from error\n",
            rule_ids=["BROAD-EXCEPT"])
        assert rule_ids(flagged) == ["BROAD-EXCEPT"]
        clean = lint_source(
            "try:\n"
            "    work()\n"
            "except BaseException:\n"
            "    cleanup()\n"
            "    raise\n",
            rule_ids=["BROAD-EXCEPT"])
        assert clean.clean


# ----------------------------------------------------------------------
# SOCKET-HYGIENE
# ----------------------------------------------------------------------
class TestSocketHygiene:
    def test_unclosed_socket_is_flagged(self):
        result = lint_source(
            "import socket\n"
            "def talk(host, port):\n"
            "    sock = socket.create_connection((host, port))\n"
            "    sock.sendall(b'x')\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert rule_ids(result) == ["SOCKET-HYGIENE"]

    def test_finally_close_is_clean(self):
        result = lint_source(
            "import socket\n"
            "def talk(host, port):\n"
            "    sock = socket.create_connection((host, port))\n"
            "    try:\n"
            "        sock.sendall(b'x')\n"
            "    finally:\n"
            "        sock.close()\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert result.clean

    def test_returned_socket_is_clean(self):
        result = lint_source(
            "import socket\n"
            "def connect(host, port):\n"
            "    sock = socket.create_connection((host, port))\n"
            "    sock.settimeout(1.0)\n"
            "    return sock\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert result.clean

    def test_attribute_handoff_is_clean(self):
        result = lint_source(
            "import socket\n"
            "class Stream:\n"
            "    def _open(self, host, port):\n"
            "        sock = socket.create_connection((host, port))\n"
            "        self._sock = sock\n",
            rule_ids=["SOCKET-HYGIENE"])
        assert result.clean


# ----------------------------------------------------------------------
# PICKLE-JOB
# ----------------------------------------------------------------------
class TestPickleJob:
    def test_instance_lambda_is_flagged(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, scale):\n"
            "        self.transform = lambda x: x * scale\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_local_closure_is_flagged(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, scale):\n"
            "        def transform(x):\n"
            "            return x * scale\n"
            "        self.transform = transform\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_open_handle_is_flagged(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, path):\n"
            "        self.handle = open(path, encoding='utf-8')\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_module_level_mutable_alias_is_flagged(self):
        result = lint_source(
            "_REGISTRY = {}\n"
            "class GridJob(BatchJob):\n"
            "    def __init__(self):\n"
            "        self.registry = _REGISTRY\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_subclass_chain_is_tracked(self):
        result = lint_source(
            "class Base(StatisticalGridJob):\n"
            "    pass\n"
            "class Derived(Base):\n"
            "    def __init__(self):\n"
            "        self.fn = lambda: 1\n",
            rule_ids=["PICKLE-JOB"])
        assert rule_ids(result) == ["PICKLE-JOB"]

    def test_plain_fields_and_non_job_classes_are_clean(self):
        result = lint_source(
            "class GridJob(BatchJob):\n"
            "    def __init__(self, points, seed):\n"
            "        self.points = tuple(points)\n"
            "        self.seed = seed\n"
            "class Helper:\n"
            "    def __init__(self):\n"
            "        self.fn = lambda: 1\n",  # not a job class
            rule_ids=["PICKLE-JOB"])
        assert result.clean


# ----------------------------------------------------------------------
# DIGEST-DETERMINISM
# ----------------------------------------------------------------------
class TestDigestDeterminism:
    def test_clock_in_digest_payload_is_flagged(self):
        result = lint_source(
            "import time\n"
            "from repro.batch.digest import canonical\n"
            "def key(job):\n"
            "    return canonical({'job': job, 'at': time.time()})\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_tainted_local_is_flagged(self):
        result = lint_source(
            "import time\n"
            "from repro.batch.digest import canonical\n"
            "def key(job):\n"
            "    stamp = time.time()\n"
            "    return canonical({'job': job, 'at': stamp})\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_cache_key_returning_id_is_flagged(self):
        result = lint_source(
            "class GridJob:\n"
            "    def cache_key(self):\n"
            "        return f'{id(self)}'\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_set_order_materialization_is_flagged(self):
        result = lint_source(
            "from repro.batch.digest import canonical\n"
            "def key(names):\n"
            "    return canonical({'names': list(set(names))})\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert rule_ids(result) == ["DIGEST-DETERMINISM"]

    def test_sorted_set_and_clock_outside_digest_are_clean(self):
        result = lint_source(
            "import time\n"
            "from repro.batch.digest import canonical\n"
            "def key(names, job):\n"
            "    started = time.perf_counter()\n"  # timing, not keying
            "    digest = canonical({'names': sorted(set(names))})\n"
            "    elapsed = time.perf_counter() - started\n"
            "    return digest, elapsed\n",
            rule_ids=["DIGEST-DETERMINISM"])
        assert result.clean


# ----------------------------------------------------------------------
# LOCK-DISCIPLINE
# ----------------------------------------------------------------------
LOCKED_CLASS_HEADER = (
    "import threading\n"
    "class Server:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._count = 0\n"
)


class TestLockDiscipline:
    def test_unlocked_read_of_shared_attr_is_flagged(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def peek(self):\n"
            "        return self._count\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert rule_ids(result) == ["LOCK-DISCIPLINE"]
        assert "_count" in result.diagnostics[0].message

    def test_locked_access_is_clean(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self._count\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_config_attrs_are_not_shared(self):
        # host/port are written only in __init__: immutable-after-
        # publish, free to read anywhere.
        result = lint_source(
            "import threading\n"
            "class Server:\n"
            "    def __init__(self, host, port):\n"
            "        self._lock = threading.Lock()\n"
            "        self.host = host\n"
            "        self.port = port\n"
            "    def endpoint(self):\n"
            "        return f'{self.host}:{self.port}'\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_locked_suffix_methods_are_exempt(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
            "    def _bump_locked(self):\n"
            "        self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_event_attrs_are_exempt(self):
        result = lint_source(
            "import threading\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._serving = threading.Event()\n"
            "        self._count = 0\n"
            "    def stop(self):\n"
            "        self._serving.clear()\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_lockless_classes_are_skipped(self):
        result = lint_source(
            "class Accumulator:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def bump(self):\n"
            "        self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean


class TestLockSelfDeadlock:
    """The inter-procedural half of LOCK-DISCIPLINE: calls that
    re-enter a held non-reentrant lock, found without running code."""

    def test_reentrant_call_under_held_lock_is_flagged(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def bump_twice(self):\n"
            "        with self._lock:\n"
            "            self._count += 2\n"
            "            self.bump()\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert rule_ids(result) == ["LOCK-DISCIPLINE"]
        assert "deadlocks the thread" in result.diagnostics[0].message

    def test_transitive_reentry_is_followed_through_helpers(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def relay(self):\n"
            "        self.bump()\n"
            "    def outer(self):\n"
            "        with self._lock:\n"
            "            self._count += 2\n"
            "            self.relay()\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert rule_ids(result) == ["LOCK-DISCIPLINE"]
        assert "calls into" in result.diagnostics[0].message

    def test_rlock_reentry_is_clean(self):
        result = lint_source(
            "import threading\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n"
            "        self._count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def bump_twice(self):\n"
            "        with self._lock:\n"
            "            self._count += 2\n"
            "            self.bump()\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean

    def test_locked_variant_call_is_clean(self):
        result = lint_source(
            LOCKED_CLASS_HEADER +
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
            "    def bump_twice(self):\n"
            "        with self._lock:\n"
            "            self._bump_locked()\n"
            "            self._bump_locked()\n"
            "    def _bump_locked(self):\n"
            "        self._count += 1\n",
            rule_ids=["LOCK-DISCIPLINE"])
        assert result.clean


# ----------------------------------------------------------------------
# LOCK-ORDER
# ----------------------------------------------------------------------
class TestLockOrder:
    """Cycles in the global acquisition-order graph -- seeded-deadlock
    fixtures must be detected statically, without executing anything."""

    def test_inverted_pair_in_one_class_is_flagged(self):
        result = lint_source(
            "import threading\n"
            "class Broker:\n"
            "    def __init__(self):\n"
            "        self._jobs = threading.Lock()\n"
            "        self._stats = threading.Lock()\n"
            "    def submit(self):\n"
            "        with self._jobs:\n"
            "            with self._stats:\n"
            "                pass\n"
            "    def report(self):\n"
            "        with self._stats:\n"
            "            with self._jobs:\n"
            "                pass\n",
            rule_ids=["LOCK-ORDER"])
        assert rule_ids(result) == ["LOCK-ORDER"]
        message = result.diagnostics[0].message
        assert "lock-order cycle" in message
        assert "Broker._jobs" in message and "Broker._stats" in message

    def test_cross_module_cycle_through_calls_is_flagged(self):
        # The cycle only exists in the composition: Engine.flush takes
        # Engine._lock then (via Store.save) Store._lock, while
        # Store.sync takes Store._lock then (via Engine.flush)
        # Engine._lock.  Neither file is suspicious alone.
        result = lint_sources({
            "src/proj/engine.py":
                "import threading\n"
                "from proj.store import Store\n"
                "class Engine:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._store = Store()\n"
                "    def flush(self):\n"
                "        with self._lock:\n"
                "            self._store.save()\n",
            "src/proj/store.py":
                "import threading\n"
                "from proj.engine import Engine\n"
                "class Store:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._engine = Engine()\n"
                "    def save(self):\n"
                "        with self._lock:\n"
                "            pass\n"
                "    def sync(self):\n"
                "        with self._lock:\n"
                "            self._engine.flush()\n",
        }, rule_ids=["LOCK-ORDER"])
        assert "LOCK-ORDER" in rule_ids(result)
        message = result.diagnostics[0].message
        assert "Engine._lock" in message and "Store._lock" in message
        assert "witnesses:" in message

    def test_consistent_global_order_is_clean(self):
        result = lint_source(
            "import threading\n"
            "class Broker:\n"
            "    def __init__(self):\n"
            "        self._jobs = threading.Lock()\n"
            "        self._stats = threading.Lock()\n"
            "    def submit(self):\n"
            "        with self._jobs:\n"
            "            with self._stats:\n"
            "                pass\n"
            "    def report(self):\n"
            "        with self._jobs:\n"
            "            with self._stats:\n"
            "                pass\n",
            rule_ids=["LOCK-ORDER"])
        assert result.clean

    def test_one_directional_cross_module_calls_are_clean(self):
        result = lint_sources({
            "src/proj/engine.py":
                "import threading\n"
                "from proj.store import Store\n"
                "class Engine:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._store = Store()\n"
                "    def flush(self):\n"
                "        with self._lock:\n"
                "            self._store.save()\n",
            "src/proj/store.py":
                "import threading\n"
                "class Store:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "    def save(self):\n"
                "        with self._lock:\n"
                "            pass\n",
        }, rule_ids=["LOCK-ORDER"])
        assert result.clean


# ----------------------------------------------------------------------
# WIRE-PROTOCOL
# ----------------------------------------------------------------------
SERVER_FIXTURE = (
    "class Server:\n"
    "    def handle_request(self, request):\n"
    "        op = request.get('op')\n"
    "        if op == 'ping':\n"
    "            return {'ok': True, 'server': 'fixture'}\n"
    "        if op == 'get':\n"
    "            digest = request.get('digest')\n"
    "            return {'ok': True, 'payload': digest}\n"
    "        return {'ok': False, 'error': 'unknown op'}\n"
)


class TestWireProtocol:
    def test_op_without_handler_is_flagged(self):
        result = lint_sources({
            "src/proj/server.py": SERVER_FIXTURE,
            "src/proj/client.py":
                "class Client:\n"
                "    def evict(self):\n"
                "        response = self._request({'op': 'evict'})\n"
                "        return response['ok']\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert rule_ids(result) == ["WIRE-PROTOCOL"]
        assert "sends op 'evict'" in result.diagnostics[0].message
        assert result.diagnostics[0].path == "src/proj/client.py"

    def test_conforming_client_server_pair_is_clean(self):
        result = lint_sources({
            "src/proj/server.py": SERVER_FIXTURE,
            "src/proj/client.py":
                "class Client:\n"
                "    def ping(self):\n"
                "        response = self._request({'op': 'ping'})\n"
                "        return response['ok']\n"
                "    def get(self, digest):\n"
                "        response = self._request(\n"
                "            {'op': 'get', 'digest': digest})\n"
                "        return response.get('payload')\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert result.clean

    def test_handler_field_no_sender_attaches_is_flagged(self):
        result = lint_sources({
            "src/proj/server.py":
                "class Server:\n"
                "    def handle_request(self, request):\n"
                "        op = request.get('op')\n"
                "        if op == 'put':\n"
                "            digest = request.get('digest')\n"
                "            payload = request.get('payload')\n"
                "            return {'ok': True}\n"
                "        return {'ok': False, 'error': 'unknown op'}\n",
            "src/proj/client.py":
                "class Client:\n"
                "    def put(self, digest):\n"
                "        response = self._request(\n"
                "            {'op': 'put', 'digest': digest})\n"
                "        return response['ok']\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert rule_ids(result) == ["WIRE-PROTOCOL"]
        assert "reads request field 'payload'" \
            in result.diagnostics[0].message

    def test_response_field_never_answered_is_flagged(self):
        result = lint_sources({
            "src/proj/server.py": SERVER_FIXTURE,
            "src/proj/client.py":
                "class Client:\n"
                "    def ping(self):\n"
                "        response = self._request({'op': 'ping'})\n"
                "        return response['uptime']\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert rule_ids(result) == ["WIRE-PROTOCOL"]
        assert "response field 'uptime'" \
            in result.diagnostics[0].message

    def test_envelope_fields_are_always_readable(self):
        # The handler loops synthesize {"ok": false, "error": ...}
        # frames, so reading `error` is fine even though no 'ping'
        # branch literal spells it out.
        result = lint_sources({
            "src/proj/server.py": SERVER_FIXTURE,
            "src/proj/client.py":
                "class Client:\n"
                "    def ping(self):\n"
                "        response = self._request({'op': 'ping'})\n"
                "        if not response['ok']:\n"
                "            raise RuntimeError(response['error'])\n"
                "        return response['server']\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert result.clean

    def test_response_literal_without_ok_is_flagged(self):
        result = lint_source(
            "def handle_request(request):\n"
            "    op = request.get('op')\n"
            "    if op == 'stats':\n"
            "        return {'requests': 7}\n"
            "    return {'ok': False, 'error': 'unknown op'}\n",
            relpath="src/proj/server.py",
            rule_ids=["WIRE-PROTOCOL"])
        assert rule_ids(result) == ["WIRE-PROTOCOL"]
        assert "no 'ok' field" in result.diagnostics[0].message

    def test_rejection_without_error_is_flagged(self):
        result = lint_source(
            "def handle_request(request):\n"
            "    op = request.get('op')\n"
            "    if op == 'get':\n"
            "        if request.get('digest') is None:\n"
            "            return {'ok': False}\n"
            "        return {'ok': True, 'payload': 'x'}\n"
            "    return {'ok': False, 'error': 'unknown op'}\n",
            relpath="src/proj/server.py",
            rule_ids=["WIRE-PROTOCOL"])
        assert rule_ids(result) == ["WIRE-PROTOCOL"]
        assert "no 'error' field" in result.diagnostics[0].message

    def test_event_kind_mismatches_are_flagged(self):
        # 'progress' is dispatched on but never produced; 'heartbeat'
        # is produced but never consumed.
        result = lint_sources({
            "src/proj/push.py":
                "def push(sock, index):\n"
                "    send_frame(sock, {'event': 'result',\n"
                "                      'index': index})\n"
                "    send_frame(sock, {'event': 'heartbeat'})\n",
            "src/proj/pull.py":
                "def pull(frames):\n"
                "    for event in frames:\n"
                "        kind = event.get('event')\n"
                "        if kind == 'result':\n"
                "            yield event['index']\n"
                "        if kind == 'progress':\n"
                "            continue\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        messages = [diag.message for diag in result.diagnostics]
        assert any("event kind 'progress'" in message
                   for message in messages)
        assert any("event kind 'heartbeat'" in message
                   for message in messages)

    def test_event_field_never_sent_is_flagged(self):
        result = lint_sources({
            "src/proj/push.py":
                "def push(sock, index):\n"
                "    send_frame(sock, {'event': 'result',\n"
                "                      'index': index})\n",
            "src/proj/pull.py":
                "def pull(frames):\n"
                "    for event in frames:\n"
                "        kind = event.get('event')\n"
                "        if kind == 'result':\n"
                "            yield event['value']\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert rule_ids(result) == ["WIRE-PROTOCOL"]
        assert "reads field 'value' of event kind 'result'" \
            in result.diagnostics[0].message

    def test_matched_event_stream_is_clean(self):
        result = lint_sources({
            "src/proj/push.py":
                "def push(sock, index):\n"
                "    send_frame(sock, {'event': 'result',\n"
                "                      'index': index})\n",
            "src/proj/pull.py":
                "def pull(frames):\n"
                "    for event in frames:\n"
                "        kind = event.get('event')\n"
                "        if kind == 'result':\n"
                "            yield event['index']\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert result.clean

    def test_dynamic_op_disables_only_that_check(self):
        # The op value is a parameter: the site is unmatchable, so the
        # unhandled-op check must stay silent rather than guess.
        result = lint_sources({
            "src/proj/server.py": SERVER_FIXTURE,
            "src/proj/client.py":
                "class Client:\n"
                "    def call(self, op):\n"
                "        return self._request({'op': op})\n",
        }, rule_ids=["WIRE-PROTOCOL"])
        assert result.clean


# ----------------------------------------------------------------------
# DOCSTRING-PUBLIC
# ----------------------------------------------------------------------
class TestDocstringPublic:
    def test_missing_public_docstring_in_strict_package_is_flagged(self):
        result = lint_source(
            '"""Module docstring."""\n'
            "def compile_batch(jobs):\n"
            "    return jobs\n",
            relpath="src/repro/batch/newmod.py",
            rule_ids=["DOCSTRING-PUBLIC"])
        # Both tiers fire: the strict-package miss and (at 1/2 names
        # documented) the tree-wide coverage floor.
        assert set(rule_ids(result)) == {"DOCSTRING-PUBLIC"}
        assert any("compile_batch" in diag.message
                   for diag in result.diagnostics)
        assert any("floor" in diag.message
                   for diag in result.diagnostics)

    def test_documented_module_is_clean(self):
        result = lint_source(
            '"""Module docstring."""\n'
            "def compile_batch(jobs):\n"
            '    """Compile the batch."""\n'
            "    return jobs\n"
            "def _private(jobs):\n"
            "    return jobs\n",
            relpath="src/repro/batch/newmod.py",
            rule_ids=["DOCSTRING-PUBLIC"])
        assert result.clean

    def test_non_source_files_do_not_participate(self):
        result = lint_source(
            "def helper():\n    return 1\n",
            relpath="tools/somescript.py",
            rule_ids=["DOCSTRING-PUBLIC"])
        assert result.clean


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SOURCE = ("from pathlib import Path\n"
              "text = Path('x.json').read_text()\n")

    def test_trailing_disable_suppresses_own_line(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()"
            "  # repro-lint: disable=IO-ENCODING -- fixture\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean
        assert result.n_suppressed == 1

    def test_standalone_disable_suppresses_next_line(self):
        result = lint_source(
            "from pathlib import Path\n"
            "# repro-lint: disable=IO-ENCODING -- fixture\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean
        assert result.n_suppressed == 1

    def test_disable_file_suppresses_whole_file(self):
        result = lint_source(
            "# repro-lint: disable-file=IO-ENCODING -- fixture\n"
            "from pathlib import Path\n"
            "a = Path('x.json').read_text()\n"
            "b = Path('y.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean
        assert result.n_suppressed == 2

    def test_unrelated_rule_id_does_not_suppress(self):
        result = lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()"
            "  # repro-lint: disable=BROAD-EXCEPT -- wrong rule\n",
            rule_ids=["IO-ENCODING"])
        assert rule_ids(result) == ["IO-ENCODING"]

    def test_all_sentinel_suppresses_everything(self):
        result = lint_source(
            "from pathlib import Path\n"
            "# repro-lint: disable=all -- fixture\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])
        assert result.clean

    def test_parse_errors_cannot_be_suppressed(self):
        result = lint_source(
            "# repro-lint: disable-file=all -- nice try\n"
            "def broken(:\n")
        assert rule_ids(result) == [PARSE_ERROR]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
class TestReporters:
    def _result(self):
        return lint_source(
            "from pathlib import Path\n"
            "text = Path('x.json').read_text()\n",
            rule_ids=["IO-ENCODING"])

    def test_json_report_round_trips(self):
        result = self._result()
        report = render_json(result.diagnostics, n_files=result.n_files,
                             n_suppressed=result.n_suppressed,
                             suppressed_by_rule=result.suppressed_by_rule)
        parsed = parse_json_report(report)
        assert parsed == result.diagnostics
        payload = json.loads(report)
        assert payload["tool"] == "repro-lint"
        assert payload["schema"] == 2
        assert payload["files_checked"] == 1
        assert payload["suppressed_by_rule"] == {}
        assert payload["diagnostics"][0]["rule_id"] == "IO-ENCODING"

    def test_per_rule_suppression_counts_reach_the_report(self):
        result = lint_source(
            "from pathlib import Path\n"
            "a = Path('x.json').read_text()"
            "  # repro-lint: disable=IO-ENCODING -- fixture\n"
            "b = Path('y.json').read_text()"
            "  # repro-lint: disable=IO-ENCODING -- fixture\n",
            rule_ids=["IO-ENCODING"])
        assert result.suppressed_by_rule == {"IO-ENCODING": 2}
        payload = json.loads(render_json(
            result.diagnostics, n_files=result.n_files,
            n_suppressed=result.n_suppressed,
            suppressed_by_rule=result.suppressed_by_rule))
        assert payload["suppressed"] == 2
        assert payload["suppressed_by_rule"] == {"IO-ENCODING": 2}

    def test_schema_mismatch_is_rejected(self):
        report = json.dumps({"schema": 999, "diagnostics": []})
        with pytest.raises(ValueError):
            parse_json_report(report)

    def test_text_report_carries_location_and_summary(self):
        result = self._result()
        text = render_text(result.diagnostics, n_files=result.n_files,
                           n_suppressed=result.n_suppressed)
        assert "fixture.py:2:" in text
        assert "IO-ENCODING" in text
        assert "1 issue(s)" in text

    def test_clean_text_report_says_clean(self):
        text = render_text([], n_files=3, n_suppressed=2)
        assert "clean" in text
        assert "2 finding(s) suppressed" in text


# ----------------------------------------------------------------------
# Rule selection (--select / --rule)
# ----------------------------------------------------------------------
class TestRuleSelection:
    TARGET = str(ROOT / "tools" / "run_lint.py")

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(ROOT / "tools" / "run_lint.py"),
             *argv], capture_output=True, text=True, timeout=300)

    def test_select_runs_only_named_rules(self):
        completed = self._run("--select", "IO-ENCODING,BROAD-EXCEPT",
                              "--format", "json", self.TARGET)
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["files_checked"] == 1
        assert payload["diagnostics"] == []

    def test_unknown_rule_id_exits_two_without_scanning(self):
        completed = self._run("--select", "NO-SUCH-RULE", self.TARGET)
        assert completed.returncode == 2
        assert "NO-SUCH-RULE" in completed.stderr
        assert completed.stdout == ""

    def test_unknown_rule_via_rule_flag_also_exits_two(self):
        completed = self._run("--rule", "NO-SUCH-RULE", self.TARGET)
        assert completed.returncode == 2

    def test_select_and_rule_flags_combine(self):
        result = lint_source(
            "from pathlib import Path\n"
            "try:\n"
            "    text = Path('x.json').read_text()\n"
            "except:\n"
            "    text = ''\n",
            rule_ids=["IO-ENCODING", "BROAD-EXCEPT"])
        assert sorted(rule_ids(result)) == \
            ["BROAD-EXCEPT", "IO-ENCODING"]


# ----------------------------------------------------------------------
# The repository itself
# ----------------------------------------------------------------------
class TestRepositoryIsClean:
    def test_default_targets_lint_clean(self):
        result = lint_paths()
        assert result.clean, "\n".join(
            f"{diag.location()}: {diag.rule_id} {diag.message}"
            for diag in result.diagnostics)
        assert result.n_files > 50

    def test_examples_are_in_the_default_surface(self):
        result = lint_paths(["examples"])
        assert result.clean, "\n".join(
            f"{diag.location()}: {diag.rule_id} {diag.message}"
            for diag in result.diagnostics)
        assert result.n_files > 0

    def test_cli_front_door_exits_zero(self):
        completed = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "run_lint.py"),
             "--format", "json"],
            capture_output=True, text=True, timeout=300)
        assert completed.returncode == 0, completed.stdout
        payload = json.loads(completed.stdout)
        assert payload["diagnostics"] == []

    def test_docstring_shim_still_reports_coverage(self):
        completed = subprocess.run(
            [sys.executable,
             str(ROOT / "tools" / "check_docstrings.py")],
            capture_output=True, text=True, timeout=300)
        assert completed.returncode == 0, completed.stdout
        assert "public docstring coverage" in completed.stdout
