"""Deterministic cluster test harness: virtual time, scripted workers,
injectable faults.

The real fleet tests (``thread_fleet`` in ``_cluster_jobs``) exercise
TCP framing and thread interleavings, but anything involving lease
expiry, speculation, or idle timers used to need real ``sleep`` calls.
This module removes the clock from the equation:

* :class:`VirtualClock` -- an injectable monotonic clock
  (``JobServer``/``Worker``/``Tracer`` all take ``clock=``) that only
  moves when a test calls :meth:`~VirtualClock.advance`.
* :func:`scripted_cluster` -- a :class:`~repro.batch.cluster.JobServer`
  with ``auto_reap=False`` under a virtual clock, driven entirely
  through :class:`ScriptedWorker` objects that speak the worker
  protocol via ``handle_worker_request`` (no sockets, no threads, no
  real time).  Policy sweeps run exactly when the test calls
  ``server.run_policies()``.
* Fault injection: a stalled worker is simply one that never reports
  (advance the clock past the lease timeout instead); a killed worker
  is :meth:`ScriptedWorker.kill`; a slow network or slow job is a
  clock advance between lease and report; a duplicate completion is
  two ``complete`` calls on one lease.
* :class:`GateJob` -- for tests that do need a *real*
  :class:`~repro.batch.cluster.Worker` thread (stop/idle semantics):
  execution blocks on an in-process gate the test releases, replacing
  "sleep long enough" with an explicit, bounded rendezvous.

Deterministic tests must lease with ``wait=0``: a blocking lease wait
is real time even under a virtual clock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

from _cluster_jobs import TinyResult

from repro.batch.cluster import JobServer, decode_payload, encode_payload
from repro.batch.digest import job_digest


class VirtualClock:
    """A monotonic clock that moves only when told to (thread-safe)."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        """The current virtual time (the ``clock=`` contract)."""
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new now."""
        if seconds < 0:
            raise ValueError(f"cannot rewind a monotonic clock "
                             f"({seconds})")
        with self._lock:
            self._now += float(seconds)
            return self._now


class ScriptedWorker:
    """One scripted fleet member: drives the worker protocol directly.

    The instance itself is the connection-identity ``owner`` token, so
    lease ownership, ``register_worker``, and ``release_worker``
    behave exactly as for a real connection.
    """

    def __init__(self, server: JobServer):
        self._server = server

    def request(self, message: dict) -> dict:
        """Send one raw protocol frame as this worker."""
        return self._server.handle_worker_request(message, self)

    def lease(self) -> dict | None:
        """Lease the next job (``wait=0``); ``None`` when idle."""
        response = self.request({"op": "lease", "wait": 0})
        assert response["ok"], response
        return None if response.get("idle") else response

    def complete(self, leased: dict, result: object,
                 seconds: float | None = None) -> dict:
        """Report ``result`` for a lease; returns the server's reply
        (``{"ok": True}``, or ``stale: True`` when superseded)."""
        message = {"op": "complete", "lease": leased["lease"],
                   "result": encode_payload(result)}
        if seconds is not None:
            message["seconds"] = seconds
        return self.request(message)

    def fail(self, leased: dict, error: str = "injected failure",
             error_type: str = "RuntimeError",
             seconds: float | None = None) -> dict:
        """Report a job failure for a lease."""
        message = {"op": "fail", "lease": leased["lease"],
                   "error": error, "error_type": error_type}
        if seconds is not None:
            message["seconds"] = seconds
        return self.request(message)

    def run_one(self, seconds: float | None = None) -> dict | None:
        """Lease, execute, and report one job; ``None`` when idle."""
        leased = self.lease()
        if leased is None:
            return None
        job = decode_payload(leased["job"])
        try:
            result = job.execute()
        # The scripted fleet mirrors the real worker loop: execution
        # errors become fail reports, never harness crashes.
        except Exception as error:  # noqa: BLE001 - test harness
            self.fail(leased, error=str(error),
                      error_type=type(error).__name__, seconds=seconds)
            return leased
        self.complete(leased, result, seconds=seconds)
        return leased

    def kill(self) -> None:
        """Simulate SIGKILL / connection loss: every lease this worker
        holds is requeued, exactly like a dropped TCP connection."""
        self._server.release_worker(self)


@dataclass
class ScriptedCluster:
    """A socket-less :class:`JobServer` under test control."""

    server: JobServer
    clock: VirtualClock

    def worker(self) -> ScriptedWorker:
        """A new scripted fleet member."""
        return ScriptedWorker(self.server)

    def submit(self, jobs, hints: list | None = None):
        """Submit picklable jobs; returns the server-side batch."""
        return self.server.create_batch(
            [encode_payload(job) for job in jobs], hints=hints)

    @staticmethod
    def drain_events(batch) -> list[dict]:
        """Every event currently queued for the submitting client."""
        events = []
        while not batch.events.empty():
            events.append(batch.events.get_nowait())
        return events


@contextmanager
def scripted_cluster(**server_kwargs):
    """A deterministic cluster: virtual clock, no reaper thread, no
    listener traffic.  Keyword arguments pass through to
    :class:`JobServer` (tests typically set ``lease_timeout`` and the
    policy flags); ``clock``/``auto_reap`` are fixed by the harness.
    """
    clock = VirtualClock()
    server = JobServer(port=0, clock=clock, auto_reap=False,
                       **server_kwargs)
    try:
        yield ScriptedCluster(server=server, clock=clock)
    finally:
        server.shutdown()


# ----------------------------------------------------------------------
# Gated execution for real-Worker-thread tests
# ----------------------------------------------------------------------
#: name -> (entered, release) rendezvous events of live GateJobs.
_GATES: dict[str, tuple[threading.Event, threading.Event]] = {}
_GATES_LOCK = threading.Lock()


def gate_events(name: str) -> tuple[threading.Event, threading.Event]:
    """The ``(entered, release)`` events of the named gate (created on
    first use; shared between the test and the executing thread)."""
    with _GATES_LOCK:
        if name not in _GATES:
            _GATES[name] = (threading.Event(), threading.Event())
        return _GATES[name]


def reset_gate(name: str) -> None:
    """Forget a gate (test teardown hygiene)."""
    with _GATES_LOCK:
        _GATES.pop(name, None)


@dataclass(frozen=True)
class GateJob:
    """A job that parks mid-execution until its gate opens.

    Only meaningful for in-process worker threads (the events cannot
    cross a process boundary); gives tests a bounded, sleep-free way
    to hold a real :class:`~repro.batch.cluster.Worker` inside
    ``execute_any`` while they act.
    """

    name: str
    gate: str
    value: int = 5

    result_type = TinyResult

    def cache_key(self) -> dict:
        """Engine cache identity (the gate name stays in: each gate is
        its own unit of work)."""
        return {"v": 0, "cluster-gate": self.gate, "value": self.value}

    def execute(self) -> TinyResult:
        """Signal entry, wait (bounded) for the release, then finish."""
        entered, release = gate_events(self.gate)
        entered.set()
        release.wait(timeout=30.0)
        return TinyResult(name=self.name, digest=job_digest(self),
                          value=self.value)
