"""Trace invariants: property tests over random scripted schedules
plus unit coverage of the :mod:`repro.batch.trace` reader/analyzer.

The properties pin the contracts the analyzer's interval model relies
on -- every ``lease`` gets exactly one terminal (``finish`` /
``expire`` / ``requeue``), per-worker utilization lands in [0, 1], the
critical path never exceeds the makespan, and a trace round-trips
through its JSONL encoding -- across randomized schedules with
injected faults (expired leases, killed workers, duplicate
completions) executed on the deterministic scripted cluster.
"""

from __future__ import annotations

import io
import json

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from _cluster_harness import VirtualClock, scripted_cluster
from _cluster_jobs import TinyJob

from repro.batch.trace import (
    EVENT_KINDS,
    LEASE_TERMINAL_KINDS,
    NULL_TRACER,
    TRACE_SCHEMA,
    Trace,
    TraceError,
    Tracer,
    analyze_trace,
    job_label,
    open_tracer,
    percentile,
    read_trace,
)

# ----------------------------------------------------------------------
# Random fault schedules on the scripted cluster
# ----------------------------------------------------------------------
#: Per-job faults the schedule strategy can inject.  ``ok`` is a clean
#: completion; ``duplicate`` reports the same lease twice; ``expire``
#: lets the lease time out (stalled worker) before a re-lease
#: completes it; ``kill`` drops the leasing worker (SIGKILL) so the
#: job requeues.
FAULTS = ("ok", "duplicate", "expire", "kill")

#: One job = (fault, duration ticks); a tick is 10 virtual ms.
schedules = st.lists(
    st.tuples(st.sampled_from(FAULTS), st.integers(1, 40)),
    min_size=1, max_size=6)

#: The static lease timeout the scripted runs use (virtual seconds).
LEASE_TIMEOUT = 5.0


def run_schedule(schedule, n_workers):
    """Execute ``schedule`` on a scripted cluster; returns the raw
    JSONL trace text.  Jobs run one at a time (the schedule is a
    script, not a race), with the virtual clock advanced by each job's
    duration and by fault-specific amounts."""
    sink = io.StringIO()
    with scripted_cluster(lease_timeout=LEASE_TIMEOUT, max_attempts=20,
                          trace=sink) as cluster:
        workers = [cluster.worker() for _ in range(n_workers)]
        jobs = [TinyJob(name=f"j{i}") for i in range(len(schedule))]
        cluster.submit(jobs)
        for i, (fault, ticks) in enumerate(schedule):
            seconds = ticks * 0.01
            worker = workers[i % n_workers]
            if fault == "kill":
                victim = cluster.worker()
                leased = victim.lease()
                assert leased is not None
                cluster.clock.advance(seconds)
                victim.kill()  # SIGKILL: the lease requeues
                leased = worker.lease()
            elif fault == "expire":
                leased = worker.lease()
                assert leased is not None
                cluster.clock.advance(LEASE_TIMEOUT + seconds)
                assert cluster.server.run_policies()["reaped"] == 1
                worker = workers[(i + 1) % n_workers]
                leased = worker.lease()
            else:
                leased = worker.lease()
            assert leased is not None
            cluster.clock.advance(seconds)
            reply = worker.complete(leased, "result", seconds=seconds)
            assert reply.get("stale") is not True
            if fault == "duplicate":
                stale = worker.complete(leased, "result",
                                        seconds=seconds)
                assert stale.get("stale") is True
    return sink.getvalue()


class TestTraceProperties:
    """Hypothesis properties over randomized fault schedules."""

    @given(schedule=schedules, n_workers=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_every_lease_gets_exactly_one_terminal(
            self, schedule, n_workers):
        """Lease-lifecycle invariant: each ``lease`` event is closed
        by exactly one ``finish`` / ``expire`` / ``requeue``."""
        text = run_schedule(schedule, n_workers)
        trace = read_trace(io.StringIO(text))
        leases = [e["lease"] for e in trace.events
                  if e["kind"] == "lease"]
        terminals = [e["lease"] for e in trace.events
                     if e["kind"] in LEASE_TERMINAL_KINDS]
        assert sorted(leases) == sorted(terminals)
        # And each terminal comes at or after its lease.
        start_t = {e["lease"]: e["t"] for e in trace.events
                   if e["kind"] == "lease"}
        for event in trace.events:
            if event["kind"] in LEASE_TERMINAL_KINDS:
                assert event["t"] >= start_t[event["lease"]]

    @given(schedule=schedules, n_workers=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_fault_accounting_matches_the_schedule(
            self, schedule, n_workers):
        """The analyzer's churn counters equal the injected faults."""
        report = analyze_trace(
            read_trace(io.StringIO(run_schedule(schedule, n_workers))))
        n_expire = sum(1 for fault, _ in schedule if fault == "expire")
        n_kill = sum(1 for fault, _ in schedule if fault == "kill")
        n_dup = sum(1 for fault, _ in schedule
                    if fault == "duplicate")
        assert report.n_jobs == len(schedule)
        assert report.n_completed == len(schedule)
        assert report.n_failed == 0
        assert report.n_expired == n_expire
        assert report.n_requeued == n_expire + n_kill
        assert report.n_stale == n_dup

    @given(schedule=schedules, n_workers=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_utilization_and_critical_path_bounds(
            self, schedule, n_workers):
        """Utilization lands in [0, 1]; critical path <= makespan."""
        report = analyze_trace(
            read_trace(io.StringIO(run_schedule(schedule, n_workers))))
        assert report.workers
        for worker in report.workers.values():
            assert 0.0 <= worker.utilization <= 1.0
            assert worker.busy_seconds <= worker.span_seconds + 1e-9
        assert 0.0 <= report.critical_path_seconds \
            <= report.makespan + 1e-9
        assert report.makespan >= 0.0

    @given(schedule=schedules, n_workers=st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_trace_round_trips_through_jsonl(
            self, schedule, n_workers):
        """Re-serializing header + events yields the same trace."""
        text = run_schedule(schedule, n_workers)
        first = read_trace(io.StringIO(text))
        lines = [json.dumps(first.header, separators=(",", ":"),
                            sort_keys=True)]
        lines += [json.dumps(e, separators=(",", ":"), sort_keys=True)
                  for e in first.events]
        second = read_trace(io.StringIO("\n".join(lines) + "\n"))
        assert second.header == first.header
        assert second.events == first.events
        assert all(e["kind"] in EVENT_KINDS for e in second.events)


# ----------------------------------------------------------------------
# Reader validation
# ----------------------------------------------------------------------
def header_line(**overrides) -> str:
    """A valid JSONL trace header line (fields overridable)."""
    header = {"schema": TRACE_SCHEMA, "source": "test", "wall": 0.0,
              "monotonic": 0.0, "pid": 1}
    header.update(overrides)
    return json.dumps(header)


class TestReadTraceValidation:
    """Malformed traces are rejected loudly, valid ones parse."""

    def test_empty_trace_is_an_error(self):
        """No header line at all is a :class:`TraceError`."""
        with pytest.raises(TraceError, match="empty"):
            read_trace(io.StringIO(""))
        with pytest.raises(TraceError, match="empty"):
            read_trace(io.StringIO("\n   \n"))

    def test_wrong_schema_is_rejected(self):
        """A header speaking another schema version is refused."""
        with pytest.raises(TraceError, match="schema"):
            read_trace(io.StringIO(header_line(schema="other/9")))

    def test_non_json_line_is_rejected_with_its_line_number(self):
        """Broken JSON names the offending line."""
        text = header_line() + "\n{not json}\n"
        with pytest.raises(TraceError, match="line 2"):
            read_trace(io.StringIO(text))

    def test_non_object_line_is_rejected(self):
        """A JSON array is not a trace record."""
        text = header_line() + "\n[1, 2]\n"
        with pytest.raises(TraceError, match="not a JSON object"):
            read_trace(io.StringIO(text))

    def test_unknown_event_kind_is_rejected(self):
        """Schema drift (a new kind) fails at read time."""
        text = header_line() + "\n" \
            + json.dumps({"t": 0.0, "kind": "teleport"}) + "\n"
        with pytest.raises(TraceError, match="unknown event kind"):
            read_trace(io.StringIO(text))

    @pytest.mark.parametrize("t", [-1.0, "soon", None, float("nan"),
                                   float("inf")])
    def test_bad_timestamps_are_rejected(self, t):
        """Events need a finite non-negative numeric ``t``."""
        text = header_line() + "\n" \
            + json.dumps({"t": t, "kind": "heartbeat"}) + "\n"
        with pytest.raises(TraceError, match="'t'"):
            read_trace(io.StringIO(text))

    def test_valid_trace_parses_with_unknown_fields_carried(self):
        """Unknown *fields* (not kinds) pass through untouched."""
        event = {"t": 1.25, "kind": "heartbeat", "custom": [1, 2]}
        text = header_line() + "\n" + json.dumps(event) + "\n"
        trace = read_trace(io.StringIO(text))
        assert trace.source == "test"
        assert trace.events == [event]

    def test_reader_accepts_paths_and_line_iterables(self, tmp_path):
        """The reader takes a path, a StringIO, or any line iterable."""
        lines = [header_line(),
                 json.dumps({"t": 0.5, "kind": "heartbeat"})]
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        from_path = read_trace(path)
        from_lines = read_trace(lines)
        assert from_path.events == from_lines.events


# ----------------------------------------------------------------------
# Tracer / open_tracer
# ----------------------------------------------------------------------
class TestTracer:
    """The JSONL writer side of the round-trip contract."""

    def test_header_is_written_eagerly_and_events_are_relative(self):
        """The header lands at construction; event ``t`` counts from
        the tracer's monotonic origin, not from zero."""
        clock = VirtualClock(start=100.0)
        sink = io.StringIO()
        tracer = Tracer(sink, source="unit", clock=clock)
        clock.advance(1.5)
        tracer.emit("heartbeat", queued=3)
        trace = read_trace(io.StringIO(sink.getvalue()))
        assert trace.header["schema"] == TRACE_SCHEMA
        assert trace.header["source"] == "unit"
        assert trace.header["monotonic"] == 100.0
        assert trace.events == [
            {"t": 1.5, "kind": "heartbeat", "queued": 3}]

    def test_path_sink_is_opened_appended_and_closed(self, tmp_path):
        """A path sink appends (two tracers share one artifact) and
        ``close`` is idempotent."""
        path = tmp_path / "deep" / "trace.jsonl"
        with Tracer(path, source="one") as tracer:
            tracer.emit("worker_join", worker="w1")
        tracer.close()  # idempotent after the context exit
        with Tracer(path, source="two") as tracer:
            tracer.emit("worker_leave", worker="w1")
        lines = [json.loads(line) for line
                 in path.read_text(encoding="utf-8").splitlines()]
        assert [r.get("schema", r.get("kind")) for r in lines] == [
            TRACE_SCHEMA, "worker_join", TRACE_SCHEMA, "worker_leave"]

    def test_null_tracer_is_disabled_and_inert(self):
        """The null tracer reports disabled and swallows everything."""
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("heartbeat", anything="goes")
        NULL_TRACER.close()
        with NULL_TRACER as tracer:
            assert tracer is NULL_TRACER

    def test_open_tracer_dispatch(self, tmp_path):
        """``None`` -> null; ``emit``-ables pass through; paths open."""
        assert open_tracer(None, source="x") is NULL_TRACER
        shared = Tracer(io.StringIO(), source="shared")
        assert open_tracer(shared, source="y") is shared
        opened = open_tracer(tmp_path / "t.jsonl", source="z")
        assert opened.enabled is True
        opened.close()
        assert read_trace(tmp_path / "t.jsonl").source == "z"


# ----------------------------------------------------------------------
# Analyzer helpers and rendering
# ----------------------------------------------------------------------
class TestPercentile:
    """The nearest-rank estimator shared with the server policies."""

    def test_nearest_rank_values(self):
        """Nearest-rank picks actual samples, never interpolates."""
        assert percentile([4.0, 1.0, 3.0, 2.0], 50.0) == 2.0
        assert percentile([4.0, 1.0, 3.0, 2.0], 100.0) == 4.0
        assert percentile([7.0], 95.0) == 7.0
        assert percentile(list(map(float, range(1, 11))), 95.0) == 10.0
        assert percentile([5.0, 6.0], 0.0) == 5.0

    def test_empty_sequence_raises(self):
        """An empty sample set has no percentile."""
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50.0)


class TestAnalyzeAndRender:
    """Deterministic analyzer output on synthetic and scripted traces."""

    def test_job_label_forms(self):
        """Labels degrade gracefully without a batch or a name."""
        assert job_label("b1", 3, "grid-n20") == "b1[3] grid-n20"
        assert job_label("b1", 3) == "b1[3]"
        assert job_label(None, 2) == "[2]"

    def test_empty_event_stream_yields_a_zero_report(self):
        """A header-only trace analyzes to an all-zero report that
        still renders."""
        trace = read_trace(io.StringIO(header_line() + "\n"))
        report = analyze_trace(trace)
        assert report.makespan == 0.0
        assert report.n_jobs == 0
        assert report.workers == {}
        assert "trace report" in report.render()
        assert "no worker activity" in report.render_timeline()

    def test_counters_for_cache_hits_and_drops(self):
        """``cache_hit`` / ``drop`` / ``speculate`` events count."""
        events = [
            {"t": 0.0, "kind": "cache_hit", "index": 0},
            {"t": 0.1, "kind": "cache_hit", "index": 1},
            {"t": 0.2, "kind": "drop", "batch": "b1", "index": 2},
            {"t": 0.3, "kind": "speculate", "batch": "b1", "index": 3},
        ]
        report = analyze_trace(
            Trace(header={"schema": TRACE_SCHEMA, "source": "engine"},
                  events=events))
        assert report.n_cache_hits == 2
        assert report.n_dropped == 1
        assert report.n_speculated == 1

    def test_straggler_detection_against_the_median(self):
        """A job >2x the median of >=3 completions is flagged."""
        events = []
        for i, seconds in enumerate([0.1, 0.1, 0.1, 0.9]):
            t0 = i * 1.0
            events.append({"t": t0, "kind": "enqueue",
                           "batch": "b1", "index": i, "name": f"j{i}"})
            events.append({"t": t0, "kind": "lease", "batch": "b1",
                           "index": i, "lease": f"l{i}",
                           "worker": "w1"})
            events.append({"t": t0 + seconds, "kind": "finish",
                           "batch": "b1", "index": i,
                           "lease": f"l{i}", "worker": "w1",
                           "outcome": "ok", "seconds": seconds})
        report = analyze_trace(
            Trace(header={"schema": TRACE_SCHEMA, "source": "t"},
                  events=events))
        assert report.median_seconds == pytest.approx(0.1)
        assert len(report.stragglers) == 1
        label, worker, seconds, ratio = report.stragglers[0]
        assert label == "b1[3] j3"
        assert worker == "w1"
        assert seconds == pytest.approx(0.9)
        assert ratio == pytest.approx(9.0)
        assert "stragglers" in report.render()

    def test_scripted_run_renders_report_json_and_timeline(self):
        """End-to-end: a two-worker scripted run produces a report
        whose text, JSON, and timeline forms all carry the lanes."""
        text = run_schedule(
            [("ok", 10), ("ok", 20), ("duplicate", 5), ("ok", 15)],
            n_workers=2)
        report = analyze_trace(read_trace(io.StringIO(text)))
        assert set(report.workers) == {"w1", "w2"}
        rendered = report.render()
        assert "per-worker utilization" in rendered
        assert "critical path" in rendered
        payload = report.to_json()
        assert payload["schema"] == "repro.batch.trace-report/1"
        assert payload["jobs"]["completed"] == 4
        assert payload["jobs"]["stale_results"] == 1
        assert set(payload["workers"]) == {"w1", "w2"}
        json.dumps(payload)  # JSON-able end to end
        timeline = report.render_timeline(width=32)
        assert "w1" in timeline and "w2" in timeline
        assert "#" in timeline
