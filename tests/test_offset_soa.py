"""Unit tests for simple offset assignment (SOA)."""

import pytest

from repro.errors import OffsetAssignmentError
from repro.offset.sequence import AccessSequence, random_sequence
from repro.offset.soa import (
    assignment_cost,
    liao_soa,
    ofu_assignment,
    optimal_assignment,
    tiebreak_soa,
)


class TestAssignmentCost:
    def test_free_neighbours(self):
        seq = AccessSequence(("a", "b", "a"))
        assert assignment_cost(("a", "b"), seq) == 0

    def test_costly_jump(self):
        seq = AccessSequence(("a", "c", "a"))
        assert assignment_cost(("a", "b", "c"), seq) == 2

    def test_wider_auto_range(self):
        seq = AccessSequence(("a", "c", "a"))
        assert assignment_cost(("a", "b", "c"), seq, auto_range=2) == 0

    def test_same_variable_always_free(self):
        seq = AccessSequence(("a", "a", "a"))
        assert assignment_cost(("a",), seq) == 0

    def test_missing_variable_rejected(self):
        seq = AccessSequence(("a", "b"))
        with pytest.raises(OffsetAssignmentError, match="misses"):
            assignment_cost(("a",), seq)

    def test_duplicate_variable_rejected(self):
        seq = AccessSequence(("a", "b"))
        with pytest.raises(OffsetAssignmentError, match="repeats"):
            assignment_cost(("a", "b", "a"), seq)

    def test_negative_auto_range_rejected(self):
        with pytest.raises(OffsetAssignmentError):
            assignment_cost(("a",), AccessSequence(("a",)), auto_range=-1)

    def test_extra_variables_in_assignment_allowed(self):
        # A layout may place variables the sequence never touches.
        seq = AccessSequence(("a", "b"))
        assert assignment_cost(("a", "b", "zz"), seq) == 0


class TestHeuristics:
    def test_ofu_is_first_use_order(self):
        seq = AccessSequence(("c", "a", "c", "b"))
        assert ofu_assignment(seq) == ("c", "a", "b")

    def test_liao_chains_heavy_edges(self):
        # a-b adjacent 3 times, b-c once: the heavy edge must be laid
        # out contiguously.
        seq = AccessSequence(("a", "b", "a", "b", "c", "b"))
        layout = liao_soa(seq)
        positions = {name: index for index, name in enumerate(layout)}
        assert abs(positions["a"] - positions["b"]) == 1

    def test_empty_sequence(self):
        seq = AccessSequence(())
        assert liao_soa(seq) == ()
        assert tiebreak_soa(seq) == ()
        assert ofu_assignment(seq) == ()

    def test_single_variable(self):
        seq = AccessSequence(("x", "x"))
        assert liao_soa(seq) == ("x",)

    def test_assignments_are_permutations(self):
        for seed in range(20):
            seq = random_sequence(6, 25, seed=seed)
            for heuristic in (ofu_assignment, liao_soa, tiebreak_soa):
                layout = heuristic(seq)
                assert sorted(layout) == sorted(seq.variables())

    def test_heuristics_beat_ofu_on_aggregate(self):
        totals = {"ofu": 0, "liao": 0, "tiebreak": 0}
        for seed in range(40):
            seq = random_sequence(7, 30, seed=seed, locality=0.4)
            totals["ofu"] += assignment_cost(ofu_assignment(seq), seq)
            totals["liao"] += assignment_cost(liao_soa(seq), seq)
            totals["tiebreak"] += assignment_cost(tiebreak_soa(seq), seq)
        assert totals["liao"] < totals["ofu"]
        assert totals["tiebreak"] <= totals["liao"]


class TestOptimal:
    def test_never_worse_than_heuristics(self):
        for seed in range(25):
            seq = random_sequence(6, 20, seed=seed)
            best = assignment_cost(optimal_assignment(seq), seq)
            assert best <= assignment_cost(liao_soa(seq), seq)
            assert best <= assignment_cost(tiebreak_soa(seq), seq)
            assert best <= assignment_cost(ofu_assignment(seq), seq)

    def test_guard_on_large_instances(self):
        seq = AccessSequence(tuple(f"v{i}" for i in range(12)))
        with pytest.raises(OffsetAssignmentError, match="exceed"):
            optimal_assignment(seq)

    def test_empty(self):
        assert optimal_assignment(AccessSequence(())) == ()

    def test_mirror_prune_matches_unpruned_search(self):
        """The mirror-symmetry prune must skip exactly one member of
        each mirror pair -- never a layout whose mirror is also
        skipped.  Differential oracle: the fully unpruned factorial
        search."""
        import itertools

        def unpruned_best_cost(sequence, auto_range=1):
            variables = sequence.variables()
            best = assignment_cost(variables, sequence, auto_range)
            for permutation in itertools.permutations(variables):
                best = min(best, assignment_cost(permutation, sequence,
                                                 auto_range))
            return best

        for seed in range(20):
            for n_vars in (2, 3, 5, 6):
                seq = random_sequence(n_vars, 25, seed=seed,
                                      locality=0.4)
                for auto_range in (1, 2):
                    pruned = optimal_assignment(seq, auto_range)
                    assert assignment_cost(pruned, seq, auto_range) \
                        == unpruned_best_cost(seq, auto_range)

    def test_known_instance(self):
        # Weights: ab=4, cd=3, bc=1, da=1.  A layout like (b,a,d,c)
        # covers ab, ad, dc = 8 of the 9 transitions: cost exactly 1.
        seq = AccessSequence(("a", "b", "a", "b", "c", "d", "c", "d",
                              "a", "b"))
        best = optimal_assignment(seq)
        cost = assignment_cost(best, seq)
        assert cost == 1
        positions = {name: index for index, name in enumerate(best)}
        assert abs(positions["a"] - positions["b"]) == 1
        assert abs(positions["c"] - positions["d"]) == 1
