"""Cross-module integration tests: the full story, end to end."""

import pytest

from repro import (
    AddressRegisterAllocator,
    AguSpec,
    CostModel,
    compile_kernel,
    parse_kernel,
)
from repro.agu.codegen import generate_unoptimized_code
from repro.agu.simulator import simulate
from repro.core.config import AllocatorConfig
from repro.ir.layout import MemoryLayout
from repro.merging.exhaustive import optimal_allocation
from repro.workloads.kernels import KERNELS
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)


class TestPaperNarrative:
    """The complete story of the paper's sections 2-4 in one test class."""

    SOURCE = """
    for (i = 2; i <= N; i++) {
        A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
    }
    """

    def test_section2_to_section3_flow(self):
        kernel = parse_kernel(self.SOURCE)

        # Section 3.1: K~ virtual registers suffice for zero cost.
        rich = AddressRegisterAllocator(AguSpec(8, 1)).allocate(kernel)
        assert rich.k_tilde == 3
        assert rich.is_zero_cost

        # Section 3.2: constrain to K=2 -> merging, cost appears.
        tight = AddressRegisterAllocator(AguSpec(2, 1)).allocate(kernel)
        assert tight.n_registers_used == 2
        assert tight.total_cost == 2

        # The heuristic result matches the true optimum here.
        optimum = optimal_allocation(kernel.pattern, 2, 1)
        assert tight.total_cost == optimum.total_cost

    def test_generated_code_audits_clean(self):
        artifacts = compile_kernel(self.SOURCE, AguSpec(2, 1),
                                   n_iterations=25)
        sim = artifacts.simulation
        assert sim.n_accesses_verified == 25 * 7
        assert sim.overhead_per_iteration == \
            artifacts.allocation.total_cost == 2


class TestKernelsAcrossSpecs:
    @pytest.mark.parametrize("k, m", [(1, 1), (2, 1), (4, 1), (2, 2),
                                      (8, 4)])
    def test_all_kernels_all_specs(self, k, m):
        """Every kernel compiles, simulates, and audits on every AGU."""
        spec = AguSpec(k, m)
        for name in sorted(KERNELS):
            kernel = KERNELS[name].kernel()
            artifacts = compile_kernel(kernel, spec, n_iterations=4)
            sim = artifacts.simulation
            assert sim.overhead_per_iteration == \
                artifacts.allocation.total_cost, name

    def test_optimized_beats_baseline_everywhere(self):
        spec = AguSpec(4, 1)
        for name in sorted(KERNELS):
            kernel = KERNELS[name].kernel()
            artifacts = compile_kernel(kernel, spec, run_simulation=False)
            baseline = generate_unoptimized_code(kernel.pattern, spec)
            assert artifacts.program.overhead_per_iteration <= \
                baseline.overhead_per_iteration, name


class TestAllocatorAgainstOptimum:
    def test_two_phase_heuristic_is_near_optimal(self, rng):
        """On small instances the two-phase heuristic must stay within
        a small additive gap of the exhaustive optimum (and never go
        below it)."""
        total_heuristic = 0
        total_optimal = 0
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        patterns = generate_batch(RandomPatternConfig(9, offset_span=5),
                                  25, seed=123)
        for pattern in patterns:
            heuristic_cost = allocator.allocate(pattern).total_cost
            optimal_cost = optimal_allocation(pattern, 2, 1).total_cost
            assert heuristic_cost >= optimal_cost
            total_heuristic += heuristic_cost
            total_optimal += optimal_cost
        # Aggregate gap below 35 %: the heuristic is genuinely close.
        assert total_heuristic <= 1.35 * total_optimal + 1


class TestCostModelsEndToEnd:
    def test_intra_merging_pays_more_steady_cost(self, rng):
        """EXP-A2's claim as a deterministic aggregate test."""
        patterns = generate_batch(RandomPatternConfig(14, offset_span=6),
                                  20, seed=77)
        steady_total = 0
        intra_total = 0
        for pattern in patterns:
            steady = AddressRegisterAllocator(
                AguSpec(2, 1),
                AllocatorConfig(cost_model=CostModel.STEADY_STATE),
            ).allocate(pattern)
            intra = AddressRegisterAllocator(
                AguSpec(2, 1),
                AllocatorConfig(cost_model=CostModel.INTRA),
            ).allocate(pattern)
            from repro.merging.cost import cover_cost
            steady_total += steady.total_cost
            intra_total += cover_cost(intra.cover, pattern, 1,
                                      CostModel.STEADY_STATE)
        assert steady_total <= intra_total


class TestScalarAndArrayTogether:
    def test_kernel_feeds_both_optimizers(self):
        """A kernel with arrays and scalars exercises the paper's
        technique and its 'complementary' refs [4, 5] side by side."""
        from repro.offset.sequence import AccessSequence
        from repro.offset.soa import (
            assignment_cost,
            ofu_assignment,
            tiebreak_soa,
        )

        kernel = parse_kernel("""
        int x[64], y[64], a, b, c, d;
        for (i = 0; i < 32; i++) {
            a = x[i] * b;
            c = x[i+1] * d;
            y[i] = a + c;
            b = a - d;
        }
        """)
        # Arrays: allocate registers.
        allocation = AddressRegisterAllocator(AguSpec(2, 1)) \
            .allocate(kernel)
        assert allocation.total_cost >= 0
        # Scalars: lay out memory.
        sequence = AccessSequence.from_kernel(kernel)
        assert len(sequence) > 0
        layout = tiebreak_soa(sequence)
        assert assignment_cost(layout, sequence) <= \
            assignment_cost(ofu_assignment(sequence), sequence)
