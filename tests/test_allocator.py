"""Unit tests for the two-phase allocator (the paper's algorithm)."""

import pytest

from repro.agu.model import AguSpec
from repro.core.allocator import AddressRegisterAllocator
from repro.core.config import AllocatorConfig
from repro.errors import AllocationError
from repro.ir.builder import (
    LoopBuilder,
    loop_from_offsets,
    pattern_from_offsets,
)
from repro.merging.cost import CostModel, cover_cost
from repro.pathcover.verify import is_zero_cost_path

from conftest import PAPER_OFFSETS


class TestPaperExample:
    def test_unconstrained_allocation_is_free(self, paper_pattern):
        allocator = AddressRegisterAllocator(AguSpec(3, 1))
        result = allocator.allocate(paper_pattern)
        assert result.k_tilde == 3
        assert result.n_registers_used == 3
        assert result.is_zero_cost
        assert result.strategy == "none"

    def test_constrained_allocation(self, paper_pattern):
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        result = allocator.allocate(paper_pattern)
        assert result.k_tilde == 3
        assert result.n_registers_used == 2
        assert result.total_cost == 2
        assert result.strategy == "best_pair"
        assert len(result.merge_steps) == 1

    def test_accepts_loop_and_kernel_inputs(self):
        loop = loop_from_offsets(PAPER_OFFSETS, start=2, n_iterations=10)
        kernel = (LoopBuilder("example", start=2, n_iterations=10)
                  .read("A", 1).read("A", 0).build())
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        assert allocator.allocate(loop).total_cost == 2
        assert allocator.allocate(kernel).is_zero_cost

    def test_summary_text(self, paper_pattern):
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        text = allocator.allocate(paper_pattern).summary()
        assert "K~ (virtual):    3 (exact)" in text
        assert "unit-cost/iter:  2" in text
        assert "AR0" in text and "AR1" in text


class TestNaiveBaseline:
    def test_same_phase1_different_merging(self, paper_pattern):
        allocator = AddressRegisterAllocator(AguSpec(1, 1))
        optimized = allocator.allocate(paper_pattern)
        naive = allocator.allocate_naive(paper_pattern, seed=2)
        assert naive.k_tilde == optimized.k_tilde
        assert naive.strategy.startswith("naive/")
        assert naive.total_cost >= optimized.total_cost - 2  # sanity

    def test_naive_strategy_override(self, paper_pattern):
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        result = allocator.allocate_naive(paper_pattern,
                                          strategy="first_pair")
        assert result.strategy == "naive/first_pair"

    def test_naive_mean_worse_or_equal(self, rng):
        """Aggregate check of the paper's premise."""
        total_optimized = 0
        total_naive = 0
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        for trial in range(30):
            offsets = [rng.randint(-6, 6) for _ in range(12)]
            pattern = pattern_from_offsets(offsets)
            total_optimized += allocator.allocate(pattern).total_cost
            total_naive += allocator.allocate_naive(
                pattern, seed=trial).total_cost
        assert total_optimized <= total_naive


class TestFallbacks:
    def test_infeasible_zero_cost_cover(self):
        # x[2i] with M=1: no zero-cost cover exists at all.
        pattern = (LoopBuilder().read("x", 0, coefficient=2)
                   .read("x", 3, coefficient=2).build_pattern())
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        result = allocator.allocate(pattern)
        assert result.k_tilde is None
        assert not result.phase1_feasible
        assert result.total_cost == cover_cost(result.cover, pattern, 1)
        assert "infeasible" in result.summary()

    def test_greedy_cover_beyond_exact_limit(self, rng):
        offsets = [rng.randint(-8, 8) for _ in range(30)]
        pattern = pattern_from_offsets(offsets)
        allocator = AddressRegisterAllocator(
            AguSpec(4, 1), AllocatorConfig(exact_cover_limit=10))
        result = allocator.allocate(pattern)
        assert result.k_tilde is not None
        assert not result.phase1_optimal
        # The greedy cover is still genuinely zero-cost.
        assert result.phase1_feasible

    def test_empty_pattern(self):
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        result = allocator.allocate(pattern_from_offsets([]))
        assert result.total_cost == 0
        assert result.n_registers_used == 0


class TestCostModels:
    def test_intra_model_respected(self, paper_pattern):
        allocator = AddressRegisterAllocator(
            AguSpec(1, 1), AllocatorConfig(cost_model=CostModel.INTRA))
        result = allocator.allocate(paper_pattern)
        assert result.cost_model is CostModel.INTRA
        assert result.total_cost == cover_cost(result.cover, paper_pattern,
                                               1, CostModel.INTRA)

    def test_phase1_zero_cost_under_steady_state(self, rng):
        allocator = AddressRegisterAllocator(AguSpec(8, 1))
        for _ in range(10):
            offsets = [rng.randint(-4, 4) for _ in range(8)]
            result = allocator.allocate(pattern_from_offsets(offsets))
            if result.k_tilde is not None and \
                    result.n_registers_used == result.k_tilde:
                for path in result.cover:
                    assert is_zero_cost_path(path, result.pattern, 1)


class TestConfigValidation:
    def test_bad_naive_strategy(self):
        with pytest.raises(AllocationError):
            AllocatorConfig(naive_strategy="nope")

    def test_bad_budget(self):
        with pytest.raises(AllocationError):
            AllocatorConfig(cover_node_budget=0)

    def test_bad_limit(self):
        with pytest.raises(AllocationError):
            AllocatorConfig(exact_cover_limit=-1)
