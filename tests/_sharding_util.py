"""Shared helpers of the experiment-sharding differential suite.

Used by ``tests/test_experiment_sharding.py`` and by the one-off
capture of ``tests/golden/experiment_goldens.json``, so both sides
normalize summaries the same way.  The goldens snapshot the retired
*sequential* loops immediately before the sharding migration -- i.e.
with this PR's seed-audit fixes (EXP-A3's naive-baseline seeding)
already applied -- so they prove sharding changed nothing, not that
behavior matches pre-fix releases (see the provenance caveat in the
test module).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

#: Wall-clock measurements: meaningful within one run, never
#: bit-reproducible across runs.
TIMING_KEYS = frozenset({
    "elapsed_seconds", "wall_seconds", "mean_exact_ms", "mean_greedy_ms",
})

#: Cache-state accounting: varies between cold and warm runs.
CACHE_STATE_KEYS = frozenset({"n_points_compiled", "n_points_cached"})


def normalize_summary(summary: Any, *,
                      keep_point_timings: bool = False) -> dict:
    """An experiment summary as a JSON-canonical comparison key.

    Drops the config (an input, not a result), the cache-state
    counters, and -- unless ``keep_point_timings`` -- zeroes every
    wall-clock field, then round-trips through JSON so numeric types
    compare the way cached payloads do.  Two summaries are bit-identical
    exactly when their normalized forms are equal.
    """
    record = dataclasses.asdict(summary)
    record.pop("config", None)
    for key in CACHE_STATE_KEYS | {"elapsed_seconds"}:
        record.pop(key, None)

    def scrub(value: Any) -> Any:
        if isinstance(value, dict):
            return {key: 0.0
                    if key in TIMING_KEYS and not keep_point_timings
                    else scrub(item) for key, item in value.items()}
        if isinstance(value, (list, tuple)):
            return [scrub(item) for item in value]
        return value

    return json.loads(json.dumps(scrub(record), sort_keys=True))


def config_from_kwargs(config_type: type, kwargs: dict) -> Any:
    """Rebuild a frozen config dataclass from JSON-stored kwargs
    (JSON has no tuples; grid axes come back as lists)."""
    return config_type(**{
        key: tuple(value) if isinstance(value, list) else value
        for key, value in kwargs.items()})
