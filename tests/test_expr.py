"""Unit tests for affine index expressions."""

import pytest

from repro.errors import IrError
from repro.ir.expr import AffineExpr


class TestConstruction:
    def test_plain(self):
        expr = AffineExpr(2, 3)
        assert expr.coefficient == 2
        assert expr.offset == 3
        assert expr.var == "i"

    def test_constant_constructor(self):
        expr = AffineExpr.constant(7)
        assert expr.is_constant
        assert expr.offset == 7

    def test_variable_constructor(self):
        expr = AffineExpr.variable("j")
        assert expr.coefficient == 1
        assert expr.offset == 0
        assert expr.var == "j"

    def test_rejects_non_int_coefficient(self):
        with pytest.raises(IrError):
            AffineExpr(1.5, 0)

    def test_rejects_non_int_offset(self):
        with pytest.raises(IrError):
            AffineExpr(1, "x")

    def test_rejects_bool(self):
        # bool is an int subclass; the IR refuses it to avoid silent
        # True/False arithmetic.
        with pytest.raises(IrError):
            AffineExpr(True, 0)


class TestEvaluation:
    @pytest.mark.parametrize("coeff, offset, value, expected", [
        (1, 0, 5, 5),
        (1, 3, 5, 8),
        (2, -1, 4, 7),
        (0, 9, 123, 9),
        (-1, 0, 6, -6),
    ])
    def test_evaluate(self, coeff, offset, value, expected):
        assert AffineExpr(coeff, offset).evaluate(value) == expected


class TestDistance:
    def test_same_coefficient(self):
        a = AffineExpr(1, 2)
        b = AffineExpr(1, -3)
        assert a.distance_to(b) == -5
        assert b.distance_to(a) == 5

    def test_different_coefficient_is_none(self):
        assert AffineExpr(1, 0).distance_to(AffineExpr(2, 0)) is None

    def test_different_variable_is_none(self):
        assert AffineExpr(1, 0, "i").distance_to(AffineExpr(1, 0, "j")) is None

    def test_constants_have_distance(self):
        assert AffineExpr(0, 4).distance_to(AffineExpr(0, 9)) == 5

    def test_constants_with_different_vars_still_constant(self):
        # Coefficient 0 makes the variable irrelevant.
        assert AffineExpr(0, 1, "i").distance_to(AffineExpr(0, 3, "j")) == 2

    def test_distance_to_non_expr_raises(self):
        with pytest.raises(IrError):
            AffineExpr(1, 0).distance_to(3)


class TestArithmetic:
    def test_add_expressions(self):
        result = AffineExpr(1, 2) + AffineExpr(2, -1)
        assert (result.coefficient, result.offset) == (3, 1)

    def test_add_int(self):
        result = AffineExpr(1, 2) + 5
        assert (result.coefficient, result.offset) == (1, 7)

    def test_radd(self):
        result = 5 + AffineExpr(1, 2)
        assert (result.coefficient, result.offset) == (1, 7)

    def test_sub(self):
        result = AffineExpr(2, 5) - AffineExpr(1, 1)
        assert (result.coefficient, result.offset) == (1, 4)

    def test_rsub(self):
        result = 10 - AffineExpr(1, 2)
        assert (result.coefficient, result.offset) == (-1, 8)

    def test_neg(self):
        result = -AffineExpr(2, -3)
        assert (result.coefficient, result.offset) == (-2, 3)

    def test_mul(self):
        result = AffineExpr(2, 3) * 4
        assert (result.coefficient, result.offset) == (8, 12)

    def test_rmul(self):
        result = 4 * AffineExpr(2, 3)
        assert (result.coefficient, result.offset) == (8, 12)

    def test_mul_by_non_int_raises(self):
        with pytest.raises(IrError):
            AffineExpr(1, 0) * 1.5

    def test_mixed_variables_raise(self):
        with pytest.raises(IrError):
            AffineExpr(1, 0, "i") + AffineExpr(1, 0, "j")

    def test_constant_adopts_other_variable(self):
        result = AffineExpr.constant(3, "i") + AffineExpr(1, 0, "j")
        assert result.var == "j"
        assert (result.coefficient, result.offset) == (1, 3)


class TestRendering:
    @pytest.mark.parametrize("expr, text", [
        (AffineExpr(1, 0), "i"),
        (AffineExpr(1, 3), "i+3"),
        (AffineExpr(1, -2), "i-2"),
        (AffineExpr(2, 1), "2*i+1"),
        (AffineExpr(-1, 0), "-i"),
        (AffineExpr(0, 7), "7"),
        (AffineExpr(0, -7), "-7"),
    ])
    def test_str(self, expr, text):
        assert str(expr) == text

    def test_ordering_and_hash(self):
        # Frozen dataclass with order=True: usable in sets and sorts.
        exprs = {AffineExpr(1, 0), AffineExpr(1, 0), AffineExpr(1, 1)}
        assert len(exprs) == 2
        assert sorted(exprs)[0] == AffineExpr(1, 0)
