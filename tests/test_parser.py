"""Unit tests for the kernel-language parser."""

import pytest

from repro.errors import ParseError
from repro.ir.parser import parse_kernel


class TestPaperExample:
    SOURCE = """
    for (i = 2; i <= N; i++) {
        A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
    }
    """

    def test_offsets(self):
        kernel = parse_kernel(self.SOURCE)
        assert kernel.pattern.offsets() == (1, 0, 2, -1, 1, 0, -2)

    def test_symbolic_bound(self):
        kernel = parse_kernel(self.SOURCE)
        assert kernel.loop.n_iterations is None
        assert kernel.loop.bound_symbol == "N"
        assert kernel.loop.start == 2

    def test_implicit_array_declaration(self):
        kernel = parse_kernel(self.SOURCE)
        assert [decl.name for decl in kernel.arrays] == ["A"]


class TestDeclarations:
    def test_array_and_scalar_declarations(self):
        kernel = parse_kernel("""
        int x[16], acc, y[8];
        for (i = 0; i < 4; i++) { y[i] = x[i] + acc; }
        """)
        assert {decl.name: decl.length for decl in kernel.arrays} == \
            {"x": 16, "y": 8}

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ParseError, match="declared twice"):
            parse_kernel("int x[4], x; for (i=0;i<1;i++) { x[i]; }")

    def test_scalar_subscripted_rejected(self):
        with pytest.raises(ParseError, match="subscripted"):
            parse_kernel("int s; for (i=0;i<1;i++) { s[i]; }")


class TestLoopHeader:
    @pytest.mark.parametrize("update, step", [
        ("i++", 1), ("++i", 1), ("i--", -1),
        ("i += 2", 2), ("i -= 3", -3),
        ("i = i + 4", 4), ("i = i - 1", -1),
    ])
    def test_updates(self, update, step):
        kernel = parse_kernel(
            f"for (i = 0; i < 10; {update}) {{ A[i]; }}")
        assert kernel.pattern.step == step

    @pytest.mark.parametrize("source, count", [
        ("for (i = 0; i < 10; i++) { A[i]; }", 10),
        ("for (i = 0; i <= 10; i++) { A[i]; }", 11),
        ("for (i = 2; i <= 10; i += 2) { A[i]; }", 5),
        ("for (i = 0; i < 10; i += 3) { A[i]; }", 4),
        ("for (i = 5; i < 5; i++) { A[i]; }", 0),
        ("for (i = 9; i <= 5; i++) { A[i]; }", 0),
    ])
    def test_iteration_counts(self, source, count):
        assert parse_kernel(source).loop.n_iterations == count

    def test_negative_start(self):
        kernel = parse_kernel("for (i = -3; i < 3; i++) { A[i]; }")
        assert kernel.loop.start == -3
        assert kernel.loop.n_iterations == 6

    def test_condition_must_test_loop_variable(self):
        with pytest.raises(ParseError, match="loop condition"):
            parse_kernel("for (i = 0; j < 3; i++) { A[i]; }")

    def test_update_must_change_loop_variable(self):
        with pytest.raises(ParseError, match="loop update"):
            parse_kernel("for (i = 0; i < 3; j++) { A[i]; }")

    def test_relation_must_be_less(self):
        with pytest.raises(ParseError, match="'<' or '<='"):
            parse_kernel("for (i = 0; i > 3; i--) { A[i]; }")


class TestSubscripts:
    @pytest.mark.parametrize("index, coeff, offset", [
        ("i", 1, 0), ("i+3", 1, 3), ("i-2", 1, -2), ("3+i", 1, 3),
        ("2*i", 2, 0), ("2*i+1", 2, 1), ("i*2-1", 2, -1),
        ("7", 0, 7), ("-i", -1, 0), ("-(i-1)", -1, 1),
        ("(i+1)+1", 1, 2),
    ])
    def test_affine_forms(self, index, coeff, offset):
        kernel = parse_kernel(f"for (i = 0; i < 3; i++) {{ A[{index}]; }}")
        access = kernel.pattern[0]
        assert (access.coefficient, access.offset) == (coeff, offset)

    def test_non_affine_product_rejected(self):
        with pytest.raises(ParseError, match="not affine"):
            parse_kernel("for (i = 0; i < 3; i++) { A[i*i]; }")

    def test_division_in_subscript_rejected(self):
        with pytest.raises(ParseError, match="not allowed in subscripts"):
            parse_kernel("for (i = 0; i < 3; i++) { A[i/2]; }")

    def test_other_variable_in_subscript_rejected(self):
        with pytest.raises(ParseError, match="only the loop variable"):
            parse_kernel("for (i = 0; i < 3; i++) { A[j]; }")

    def test_array_in_subscript_rejected(self):
        with pytest.raises(ParseError, match="inside subscripts"):
            parse_kernel("for (i = 0; i < 3; i++) { A[B[i]]; }")


class TestAccessOrder:
    def test_rhs_before_lhs_write(self):
        kernel = parse_kernel(
            "for (i = 0; i < 3; i++) { y[i] = x[i] + x[i+1]; }")
        rendered = [str(access) for access in kernel.pattern]
        assert rendered == ["x[i]", "x[i+1]", "y[i]="]

    def test_compound_assignment_reads_then_writes_lhs(self):
        kernel = parse_kernel("for (i = 0; i < 3; i++) { y[i] += x[i]; }")
        rendered = [str(access) for access in kernel.pattern]
        assert rendered == ["x[i]", "y[i]", "y[i]="]

    def test_expression_statements_record_reads(self):
        kernel = parse_kernel("for (i = 0; i < 3; i++) { A[i]*B[i]; }")
        assert [str(access) for access in kernel.pattern] == \
            ["A[i]", "B[i]"]

    def test_left_to_right_in_expressions(self):
        kernel = parse_kernel(
            "for (i = 0; i < 3; i++) { s = (A[i+1] - A[i]) * B[i]; }")
        assert [str(a) for a in kernel.pattern] == \
            ["A[i+1]", "A[i]", "B[i]"]

    def test_scalar_uses_in_order(self):
        kernel = parse_kernel("""
        for (i = 0; i < 3; i++) {
            acc = A[i] * gain;
            y[i] = acc;
        }
        """)
        uses = [(use.name, use.is_write) for use in kernel.scalar_uses]
        assert uses == [("gain", False), ("acc", True), ("acc", False)]

    def test_loop_variable_and_bound_not_scalars(self):
        kernel = parse_kernel(
            "for (i = 0; i < N; i++) { A[i] + i + N; }")
        assert kernel.scalar_sequence() == ()


class TestStatementForms:
    def test_empty_statements_allowed(self):
        kernel = parse_kernel("for (i = 0; i < 3; i++) { ; A[i]; ; }")
        assert len(kernel.pattern) == 1

    def test_empty_body_allowed(self):
        kernel = parse_kernel("for (i = 0; i < 3; i++) { }")
        assert len(kernel.pattern) == 0

    def test_assignment_to_expression_rejected(self):
        with pytest.raises(ParseError, match="left-hand side"):
            parse_kernel("for (i = 0; i < 3; i++) { A[i]+1 = 2; }")

    def test_loop_variable_assignment_rejected(self):
        with pytest.raises(ParseError, match="must not be assigned"):
            parse_kernel("for (i = 0; i < 3; i++) { i = A[i]; }")

    def test_parenthesized_expressions(self):
        kernel = parse_kernel(
            "for (i = 0; i < 3; i++) { y[i] = ((A[i]) + (2)); }")
        assert [str(a) for a in kernel.pattern] == ["A[i]", "y[i]="]


class TestStructuralErrors:
    @pytest.mark.parametrize("source, fragment", [
        ("", "'for' loop"),
        ("int x[3];", "'for' loop"),
        ("for i = 0; i < 3; i++) { }", r"'\('"),
        ("for (i = 0; i < 3; i++) { A[i]; ", "unterminated"),
        ("for (i = 0; i < 3; i++) { A[i] }", "';'"),
        ("for (i = 0; i < 3; i++) { } trailing", "end-of-input"),
        ("for (i = 0; i < 3; i++) { A[i; }", "']'"),
    ])
    def test_malformed_sources(self, source, fragment):
        with pytest.raises(ParseError, match=fragment):
            parse_kernel(source)

    def test_error_positions_are_reported(self):
        with pytest.raises(ParseError) as info:
            parse_kernel("for (i = 0; i < 3; i++) {\n  A[j];\n}")
        assert info.value.line == 2
