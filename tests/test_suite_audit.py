"""Corpus audit: the whole kernel library through the batch engine.

Extends the single-kernel audit (``tests/test_integration.py``) to the
entire ``full`` suite: every kernel is compiled by
:class:`~repro.batch.engine.BatchCompiler` with the simulator on, and
the simulator's dynamic cost must equal the modelled cost for each.
Also locks down the engine's headline guarantee: a second run of the
same suite is served entirely from the cache -- zero recompilations.
"""

from __future__ import annotations

import pytest

from repro.agu.model import AguSpec
from repro.batch.engine import BatchCompiler
from repro.batch.jobs import jobs_from_suite
from repro.core.pipeline import compile_kernel
from repro.workloads.kernels import KERNELS
from repro.workloads.suite import SUITES


@pytest.fixture(scope="module")
def full_suite_runs():
    """The full suite compiled twice on one compiler, >= 2 workers."""
    compiler = BatchCompiler(n_workers=2)
    jobs = jobs_from_suite("full", AguSpec(4, 1), n_iterations=4)
    first = compiler.compile(jobs)
    second = compiler.compile(jobs)
    return jobs, first, second


class TestFullSuiteAudit:
    def test_every_kernel_audits_clean(self, full_suite_runs):
        """Dynamic (simulated) cost == modelled cost, kernel by kernel."""
        _jobs, first, _second = full_suite_runs
        assert first.n_jobs == len(SUITES["full"]) == len(KERNELS)
        for result in first.results:
            assert result.simulated, result.name
            assert result.audit_ok, result.name

    def test_results_arrive_in_suite_order(self, full_suite_runs):
        _jobs, first, _second = full_suite_runs
        assert tuple(result.name for result in first.results) \
            == SUITES["full"]

    def test_parallel_run_matches_direct_compilation(self, full_suite_runs):
        """The pooled engine reports exactly what compile_kernel says."""
        _jobs, first, _second = full_suite_runs
        spec = AguSpec(4, 1)
        for result in first.results:
            artifacts = compile_kernel(KERNELS[result.name].kernel(),
                                       spec, n_iterations=4)
            assert result.total_cost == \
                artifacts.allocation.total_cost, result.name
            assert result.k_tilde == \
                artifacts.allocation.k_tilde, result.name
            assert result.n_registers_used == \
                artifacts.allocation.n_registers_used, result.name

    def test_second_run_is_fully_cached(self, full_suite_runs):
        """Acceptance: cache hits == kernel count, zero recompiles."""
        jobs, first, second = full_suite_runs
        assert first.n_cache_hits == 0
        assert first.n_compiled == len(jobs)
        assert second.n_cache_hits == len(jobs) == len(KERNELS)
        assert second.n_compiled == 0
        # Cached summaries are byte-for-byte the compiled ones.
        for fresh, cached in zip(first.results, second.results):
            assert cached.from_cache and not fresh.from_cache
            assert fresh.payload() == cached.payload()

    def test_audit_holds_across_specs(self):
        """A tighter AGU (more merging) still audits clean, batched."""
        report = BatchCompiler().compile(jobs_from_suite(
            "core8", AguSpec(2, 1), n_iterations=4))
        assert report.all_audits_ok
        assert all(result.n_registers_used <= 2
                   for result in report.results)
