"""Shared fixtures: the paper's example and common helpers."""

from __future__ import annotations

import random

import pytest

from repro.graph.access_graph import AccessGraph
from repro.ir.builder import loop_from_offsets, pattern_from_offsets
from repro.ir.types import AccessPattern

#: The offsets of the paper's section-2 example loop (Figure 1).
PAPER_OFFSETS = (1, 0, 2, -1, 1, 0, -2)


@pytest.fixture
def paper_pattern() -> AccessPattern:
    """Access pattern of the paper's example loop."""
    return pattern_from_offsets(PAPER_OFFSETS)


@pytest.fixture
def paper_graph(paper_pattern) -> AccessGraph:
    """Access graph of the paper's example with M = 1."""
    return AccessGraph(paper_pattern, modify_range=1)


@pytest.fixture
def paper_loop():
    """The example as a full loop (i = 2 .. 2+30)."""
    return loop_from_offsets(PAPER_OFFSETS, start=2, n_iterations=30)


def random_offsets(rng: random.Random, n: int, span: int = 6) -> list[int]:
    """Uniform random offsets, for quick in-test instance generation."""
    return [rng.randint(-span, span) for _ in range(n)]


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG per test."""
    return random.Random(0xC0FFEE)
