"""Unit tests for the end-to-end compilation pipeline."""

import pytest

from repro.agu.model import AguSpec
from repro.core.pipeline import (
    DEFAULT_SIMULATION_ITERATIONS,
    compile_kernel,
)
from repro.errors import ParseError
from repro.ir.parser import parse_kernel

PAPER_SOURCE = """
for (i = 2; i <= N; i++) {
    A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
}
"""


class TestFromSource:
    def test_compiles_and_simulates(self):
        artifacts = compile_kernel(PAPER_SOURCE, AguSpec(2, 1),
                                   name="paper")
        assert artifacts.kernel.name == "paper"
        assert artifacts.allocation.total_cost == 2
        assert artifacts.overhead_per_iteration == 2
        assert artifacts.simulation is not None
        assert artifacts.simulation.n_iterations == \
            DEFAULT_SIMULATION_ITERATIONS
        assert "USE" in artifacts.listing

    def test_explicit_iteration_count(self):
        artifacts = compile_kernel(PAPER_SOURCE, AguSpec(2, 1),
                                   n_iterations=5)
        assert artifacts.simulation.n_iterations == 5

    def test_simulation_can_be_skipped(self):
        artifacts = compile_kernel(PAPER_SOURCE, AguSpec(2, 1),
                                   run_simulation=False)
        assert artifacts.simulation is None

    def test_parse_errors_propagate(self):
        with pytest.raises(ParseError):
            compile_kernel("for (i = 0; i < 3; i++) { A[i] }",
                           AguSpec(2, 1))


class TestFromKernel:
    def test_accepts_parsed_kernel(self):
        kernel = parse_kernel(
            "int x[64], y[64]; "
            "for (i = 0; i < 32; i++) { y[i] = x[i] + x[i+1]; }")
        artifacts = compile_kernel(kernel, AguSpec(3, 1))
        assert artifacts.allocation.is_zero_cost
        assert artifacts.simulation.n_iterations == 32

    def test_layout_keeps_arrays_outside_modify_range(self):
        kernel = parse_kernel(
            "int x[8], y[8]; "
            "for (i = 0; i < 4; i++) { y[i] = x[i]; }")
        artifacts = compile_kernel(kernel, AguSpec(2, 3))
        gap = artifacts.layout.base("y") - (artifacts.layout.base("x") + 8)
        assert gap > 3

    def test_audit_consistency(self):
        # The simulated overhead must equal the allocation cost: this is
        # the library's central cross-check, end to end.
        kernel = parse_kernel(
            "int x[64], h[8], y[64], acc; "
            "for (i = 0; i < 40; i++) { "
            "  acc = x[i]*h[0] + x[i+4]*h[1]; y[i] = acc; }")
        artifacts = compile_kernel(kernel, AguSpec(2, 1))
        assert artifacts.simulation.overhead_per_iteration == \
            artifacts.allocation.total_cost
