"""Tests of the remote cache service: protocol, server, client, and
the end-to-end differential against local backends."""

from __future__ import annotations

import logging
import pickle
import random
import socket
import time

import pytest

from repro.agu.model import AguSpec
from repro.analysis.experiments import (
    StatisticalConfig,
    run_statistical_comparison,
)
from repro.batch.cache import (
    CacheStats,
    InMemoryLRUCache,
    JsonFileCache,
    ShardedDirectoryCache,
    TieredCache,
    open_cache,
)
from repro.batch.engine import BatchCompiler
from repro.batch.jobs import jobs_from_suite
from repro.batch.service import (
    MAX_FRAME_BYTES,
    CacheServer,
    RemoteCache,
    recv_frame,
    send_frame,
)
from repro.errors import BatchError

SPEC = AguSpec(4, 1)


@pytest.fixture
def server():
    with CacheServer(InMemoryLRUCache()) as running:
        yield running


@pytest.fixture
def client(server):
    remote = RemoteCache(*server.address, retry_interval=0.05)
    yield remote
    remote.close()


def free_port() -> int:
    """A port nothing is listening on (for dead-server tests)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestFraming:
    def test_round_trip_over_a_socketpair(self):
        left, right = socket.socketpair()
        with left, right:
            send_frame(left, {"op": "ping", "n": 3})
            assert recv_frame(right) == {"op": "ping", "n": 3}
            send_frame(right, {"ok": True})
            assert recv_frame(left) == {"ok": True}

    def test_clean_eof_between_frames_is_none(self):
        left, right = socket.socketpair()
        with right:
            left.close()
            assert recv_frame(right) is None

    def test_eof_mid_frame_raises(self):
        left, right = socket.socketpair()
        with right:
            left.sendall(b"\x00\x00\x00\xff{")  # announces 255 bytes
            left.close()
            with pytest.raises(BatchError, match="mid-frame"):
                recv_frame(right)

    def test_oversized_frame_announcement_rejected(self):
        left, right = socket.socketpair()
        with left, right:
            left.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(BatchError, match="limit"):
                recv_frame(right)

    def test_non_object_frame_rejected(self):
        left, right = socket.socketpair()
        with left, right:
            body = b"[1, 2]"
            left.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(BatchError, match="JSON object"):
                recv_frame(right)

    def test_undecodable_frame_chains_the_decode_error(self):
        """The protocol error must carry the JSON decoder's error as
        its ``__cause__`` -- ``raise ... from`` at the raise site --
        so tracebacks show *why* the frame was undecodable."""
        left, right = socket.socketpair()
        with left, right:
            body = b"{not json"
            left.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(BatchError, match="undecodable") \
                    as caught:
                recv_frame(right)
        assert isinstance(caught.value.__cause__, ValueError)

    def test_invalid_endpoint_specs_chain_their_causes(self):
        from repro.batch.service import parse_endpoint

        with pytest.raises(BatchError, match="invalid endpoint") \
                as bad_port:
            parse_endpoint("tcp://127.0.0.1:not-a-port")
        assert isinstance(bad_port.value.__cause__, ValueError)
        with pytest.raises(BatchError, match="invalid options") \
                as bad_query:
            parse_endpoint("tcp://127.0.0.1:80?dangling",
                           {"timeout": float})
        assert isinstance(bad_query.value.__cause__, ValueError)
        with pytest.raises(BatchError, match="invalid value") \
                as bad_value:
            parse_endpoint("tcp://127.0.0.1:80?timeout=soon",
                           {"timeout": float})
        assert isinstance(bad_value.value.__cause__, ValueError)


class TestServerSideFraming:
    """The server's half of the framing contract: a peer that stops
    speaking the protocol gets its connection closed; a response that
    cannot be framed gets an error frame, not a dropped connection."""

    def test_oversized_announce_closes_the_connection(self, server):
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            sock.settimeout(5.0)
            assert sock.recv(1) == b""  # server-side close
        # ...and the server is still serving fresh connections:
        assert RemoteCache(*server.address).ping()

    def test_eof_mid_frame_closes_the_connection(self, server):
        with socket.create_connection(server.address, timeout=5) as sock:
            sock.sendall(b"\x00\x00\x00\xff{")  # announces 255 bytes
            sock.shutdown(socket.SHUT_WR)
            sock.settimeout(5.0)
            assert sock.recv(1) == b""
        assert RemoteCache(*server.address).ping()

    def test_oversized_get_many_response_answers_an_error_frame(
            self, server, client, monkeypatch):
        """A ``get_many`` whose combined payloads outgrow a frame is
        answered with an error frame on the live connection (the
        client serves it as misses); it must not kill the handler."""
        import repro.batch.service as service_module

        client.put_many({"fat-1": {"v": "x" * 200},
                         "fat-2": {"v": "y" * 200}})
        with socket.create_connection(server.address, timeout=5) as sock:
            with monkeypatch.context() as patch:
                patch.setattr(service_module, "MAX_FRAME_BYTES", 300)
                send_frame(sock, {"op": "get_many",
                                  "digests": ["fat-1", "fat-2"]})
                answer = recv_frame(sock)
                assert answer["ok"] is False
                assert "exceeds" in answer["error"]
            # Same connection, framing restored: still being served.
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"] is True

    def test_idle_connection_is_closed_after_the_timeout(self):
        with CacheServer(InMemoryLRUCache(), idle_timeout=0.2) as server:
            with socket.create_connection(server.address,
                                          timeout=5) as sock:
                send_frame(sock, {"op": "ping"})
                assert recv_frame(sock)["ok"] is True
                sock.settimeout(5.0)
                assert sock.recv(1) == b""  # idle past the timeout
            # The reconnect-once client rides out an idle close.
            remote = RemoteCache(*server.address)
            remote.put("k", {"v": 1})
            time.sleep(0.3)  # server closes the idle connection
            assert remote.get("k") == {"v": 1}
            assert remote._down_since is None  # never degraded

    def test_rejects_invalid_idle_timeouts(self):
        for bad in (0, -1.0):
            with pytest.raises(BatchError, match="idle_timeout"):
                CacheServer(InMemoryLRUCache(), idle_timeout=bad)


class TestServerProtocol:
    def test_ping_get_put_stats(self, server, client):
        assert client.ping()
        assert client.get("a" * 64) is None
        client.put("a" * 64, {"x": 1, "nested": {"y": 2}})
        assert client.get("a" * 64) == {"x": 1, "nested": {"y": 2}}
        stats = client.server_stats()
        assert (stats.hits, stats.misses, stats.stores) == (1, 1, 1)

    def test_put_many_batches_into_frames(self, server):
        remote = RemoteCache(*server.address, batch_size=10)
        entries = {f"digest-{i:03d}": {"v": i} for i in range(25)}
        remote.put_many(entries)
        assert remote.stats.stores == 25
        assert server.store.stats.stores == 25
        assert remote.get("digest-024") == {"v": 24}

    def test_get_many_mixed_hits_and_misses(self, server, client):
        client.put_many({"present-1": {"v": 1}, "present-2": {"v": 2}})
        found = client.get_many(["present-1", "absent", "present-2"])
        assert found == {"present-1": {"v": 1}, "present-2": {"v": 2}}
        assert client.stats.hits == 2
        assert client.stats.misses == 1

    def test_get_many_degraded_returns_empty_and_counts_misses(self):
        remote = RemoteCache("127.0.0.1", free_port(),
                             retry_interval=60.0)
        assert remote.get_many(["a", "b", "c"]) == {}
        assert remote.stats.misses == 3

    def test_warm_batch_scan_is_one_round_trip(self, server,
                                               monkeypatch):
        """The engine's initial cache pass uses get_many: a warm 8-job
        batch costs one lookup frame, not one RTT per job."""
        jobs = jobs_from_suite("core8", SPEC, n_iterations=4)
        BatchCompiler(cache=RemoteCache(*server.address)).compile(jobs)
        requests = []
        real_handle = server.handle_request
        monkeypatch.setattr(
            server, "handle_request",
            lambda request: (requests.append(request["op"]),
                             real_handle(request))[1])
        warm = BatchCompiler(
            cache=RemoteCache(*server.address)).compile(jobs)
        assert warm.n_cache_hits == len(jobs)
        assert requests == ["get_many"]

    def test_unknown_op_and_malformed_requests_answer_errors(self,
                                                             server):
        with socket.create_connection(server.address, timeout=5) as sock:
            send_frame(sock, {"op": "frobnicate"})
            assert "unknown op" in recv_frame(sock)["error"]
            send_frame(sock, {"op": "get"})  # missing digest
            assert recv_frame(sock)["ok"] is False
            send_frame(sock, {"op": "put", "digest": "d", "payload": 3})
            assert recv_frame(sock)["ok"] is False
            send_frame(sock, {"op": "put_many", "entries": {"d": []}})
            assert recv_frame(sock)["ok"] is False
            # ...and the connection is still alive afterwards:
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"] is True

    def test_connection_reuse_many_requests_one_socket(self, server,
                                                       client):
        for index in range(50):
            client.put(f"key-{index}", {"v": index})
        assert all(client.get(f"key-{index}") == {"v": index}
                   for index in range(50))

    def test_server_refuses_to_front_a_remote(self, server):
        with pytest.raises(BatchError, match="another remote"):
            CacheServer(RemoteCache(*server.address))

    def test_ephemeral_port_is_reported(self, server):
        host, port = server.address
        assert host == "127.0.0.1"
        assert port > 0
        assert server.endpoint == f"tcp://{host}:{port}"

    @pytest.mark.skipif(not socket.has_ipv6, reason="no IPv6 support")
    def test_ipv6_loopback_end_to_end(self):
        """The client-side [::1] spec has a servable counterpart."""
        try:
            served = CacheServer(InMemoryLRUCache(), host="::1").start()
        except OSError:
            pytest.skip("IPv6 loopback unavailable")
        try:
            assert served.endpoint.startswith("tcp://[::1]:")
            client = open_cache(served.endpoint)
            client.put("k", {"v": 1})
            assert client.get("k") == {"v": 1}
            # The client's own endpoint round-trips through open_cache
            # too (bracketed, not "tcp://::1:PORT").
            assert client.endpoint == served.endpoint
            assert open_cache(client.endpoint).get("k") == {"v": 1}
        finally:
            served.shutdown()


class TestReadonlyServer:
    def test_gets_serve_and_puts_degrade_silently(self):
        store = InMemoryLRUCache()
        store.put("warm", {"v": 1})
        with CacheServer(store, readonly=True) as server:
            remote = RemoteCache(*server.address)
            assert remote.get("warm") == {"v": 1}
            remote.put("new", {"v": 2})
            remote.put_many({"more": {"v": 3}})
            assert remote.stats.stores == 0
            assert store.stats.stores == 1  # only the seed entry
            assert remote.get("new") is None

    def test_put_many_stops_after_the_first_readonly_response(self,
                                                              monkeypatch):
        """One rejected frame is enough: the client must not keep
        serializing and sending the rest of a large batch."""
        with CacheServer(InMemoryLRUCache(), readonly=True) as server:
            requests = []
            real_handle = server.handle_request
            monkeypatch.setattr(
                server, "handle_request",
                lambda request: (requests.append(request["op"]),
                                 real_handle(request))[1])
            remote = RemoteCache(*server.address, batch_size=5)
            remote.put_many({f"k{i}": {"v": i} for i in range(50)})
            assert requests == ["put_many"]  # 1 frame, not 10
            remote.put_many({"later": {"v": 1}})  # now known read-only
            assert requests == ["put_many"]
            assert remote.stats.stores == 0

    def test_readonly_server_never_writes_its_store(self, tmp_path):
        """--readonly must disable every write path, including the
        sharded store's corrupt-entry discard on get."""
        store = ShardedDirectoryCache(tmp_path / "blessed")
        store.put("good" * 16, {"v": 1})
        store.put("evil" * 16, {"v": 2})
        corrupt = store._entry_path("evil" * 16)
        corrupt.write_text("{ not json")
        with CacheServer(store, readonly=True) as server:
            remote = RemoteCache(*server.address)
            assert not store.discard_corrupt
            assert remote.get("good" * 16) == {"v": 1}
            assert remote.get("evil" * 16) is None
        assert corrupt.exists()  # still there: serving wrote nothing
        # The store was borrowed, not owned: self-healing is back on.
        assert store.discard_corrupt
        assert store.get("evil" * 16) is None
        assert not corrupt.exists()

    def test_failed_bind_leaves_the_store_unmutated(self, tmp_path):
        store = ShardedDirectoryCache(tmp_path / "blessed")
        with CacheServer(InMemoryLRUCache()) as occupant:
            with pytest.raises(OSError):
                CacheServer(store, port=occupant.address[1],
                            readonly=True)
        assert store.discard_corrupt

    def test_readonly_is_reprobed_after_retry_interval(self):
        """Read-only must not be sticky for the life of the client: a
        server restarted writable picks the stores back up."""
        store = InMemoryLRUCache()
        server = CacheServer(store, readonly=True).start()
        port = server.address[1]
        remote = RemoteCache("127.0.0.1", port, retry_interval=0.0)
        remote.put("k", {"v": 1})  # rejected; stores disabled
        assert remote.stats.stores == 0
        server.shutdown()
        with CacheServer(store, port=port) as _writable:
            remote.put("k", {"v": 2})  # interval elapsed: probe again
            assert remote.get("k") == {"v": 2}
            assert remote.stats.stores == 1


class TestGracefulDegradation:
    def test_dead_server_degrades_to_miss_and_log(self, caplog):
        remote = RemoteCache("127.0.0.1", free_port(),
                             retry_interval=60.0)
        with caplog.at_level(logging.WARNING, "repro.batch.service"):
            assert remote.get("a" * 64) is None
            remote.put("a" * 64, {"x": 1})
            remote.put_many({"b" * 64: {"x": 2}})
            assert not remote.ping()
            assert remote.server_stats() is None
        assert any("degrading" in record.message
                   for record in caplog.records)
        assert remote.stats.misses == 1
        assert remote.stats.hits == remote.stats.stores == 0

    def test_backoff_probes_again_after_retry_interval(self):
        port = free_port()
        remote = RemoteCache("127.0.0.1", port, retry_interval=0.0)
        assert remote.get("k") is None  # marks the server down
        with CacheServer(InMemoryLRUCache(), port=port) as _server:
            remote.put("k", {"x": 1})  # retry_interval elapsed: probe
            assert remote.get("k") == {"x": 1}

    def test_client_reconnects_after_a_server_restart(self):
        first = CacheServer(InMemoryLRUCache()).start()
        port = first.address[1]
        remote = RemoteCache("127.0.0.1", port, retry_interval=0.0)
        remote.put("k", {"x": 1})
        first.shutdown()
        assert remote.get("k") is None  # down: a miss, not an error
        with CacheServer(InMemoryLRUCache(), port=port) as _second:
            remote.put("k", {"x": 2})
            assert remote.get("k") == {"x": 2}

    def test_oversized_store_is_dropped_without_degrading(
            self, server, client, monkeypatch):
        """A frame too large to send is a local drop, not a transport
        failure: the server must stay 'up' and unrelated requests must
        keep being served immediately."""
        import repro.batch.service as service_module

        client.put("small", {"v": 1})
        with monkeypatch.context() as patch:
            patch.setattr(service_module, "MAX_FRAME_BYTES", 64)
            client.put("big", {"v": "x" * 200})
            client.put_many({"big-2": {"v": "y" * 200}})
        assert client.stats.stores == 1  # only the small one
        assert client._down_since is None  # not degraded
        assert client.get("small") == {"v": 1}
        assert client.get("big") is None

    def test_oversized_store_on_the_retry_attempt_does_not_degrade(
            self, server, client, monkeypatch):
        """The reconnect-and-retry path must treat a frame-too-large
        exactly like the first attempt: a local drop, no degradation
        of the (healthy) server."""
        import repro.batch.service as service_module

        client.put("seed", {"v": 1})
        client._sock.close()  # stale socket: first attempt fails
        with monkeypatch.context() as patch:
            patch.setattr(service_module, "MAX_FRAME_BYTES", 64)
            client.put("big", {"v": "x" * 200})
        assert client._down_since is None
        assert client.stats.stores == 1
        assert client.get("seed") == {"v": 1}

    def test_oversized_lookup_degrades_to_misses(self, server, client,
                                                 monkeypatch):
        """Lookups share the stores' contract: a request frame that
        cannot be sent is served as misses, never as an exception
        into the batch."""
        import repro.batch.service as service_module

        client.put("k", {"v": 1})
        with monkeypatch.context() as patch:
            patch.setattr(service_module, "MAX_FRAME_BYTES", 32)
            assert client.get("x" * 40) is None
            assert client.get_many(["y" * 40, "z" * 40]) == {}
        assert client.get("k") == {"v": 1}

    def test_oversized_response_answers_an_error_frame(
            self, server, client, monkeypatch):
        """When a *response* outgrows a frame, the server answers with
        an error frame on the live connection -- served as a miss --
        instead of dropping it and being misread as dead."""
        import repro.batch.service as service_module

        client.put("fat", {"v": "z" * 400})
        with monkeypatch.context() as patch:
            patch.setattr(service_module, "MAX_FRAME_BYTES", 300)
            assert client.get("fat") is None
            assert client._down_since is None  # not degraded
        assert client.get("fat") == {"v": "z" * 400}

    def test_late_connection_after_shutdown_is_closed(self):
        """A handler that lands in the accept/shutdown race window
        must be closed on registration, not left serving."""
        server = CacheServer(InMemoryLRUCache()).start()
        server.shutdown()
        left, right = socket.socketpair()
        with left:
            server.track_connection(right, alive=True)
            left.settimeout(1.0)
            assert left.recv(1) == b""  # right was hard-closed

    def test_degradation_mid_batch_never_raises_into_the_engine(self):
        server = CacheServer(InMemoryLRUCache()).start()
        remote = RemoteCache(*server.address, retry_interval=60.0)
        jobs = jobs_from_suite("core8", SPEC, n_iterations=4)
        stream = BatchCompiler(cache=remote).as_completed(jobs)
        next(stream)
        server.shutdown()  # the server dies mid-run
        results = dict(stream)
        assert len(results) == len(jobs) - 1
        report = BatchCompiler(cache=remote).compile(jobs)
        assert report.n_jobs == len(jobs)  # all recompiled, none lost


class TestPickling:
    def test_client_crosses_process_boundaries(self, server, client):
        client.put("k", {"x": 1})
        clone = pickle.loads(pickle.dumps(client))
        assert clone.get("k") == {"x": 1}
        # Fresh per-process connection state and stats:
        assert clone.stats.hits == 1 and clone.stats.stores == 0
        assert client.stats.stores == 1

    def test_rejects_invalid_configuration(self):
        for kwargs in ({}, {"batch_size": 0}, {"timeout": 0},
                       {"timeout": -1.0}, {"retry_interval": -0.1}):
            with pytest.raises(BatchError):
                RemoteCache("localhost", 0 if not kwargs else 80,
                            **kwargs)
        with pytest.raises(BatchError):
            RemoteCache("localhost", 70000)
        # Misconfiguration fails loudly at open time, not mid-batch:
        with pytest.raises(BatchError):
            open_cache("tcp://127.0.0.1:8741?timeout=-1")


class TestEngineIntegration:
    def test_cold_then_warm_through_the_server(self, server, client):
        jobs = jobs_from_suite("core8", SPEC, n_iterations=4)
        cold = BatchCompiler(cache=client).compile(jobs)
        assert cold.n_compiled == len(jobs)
        warm = BatchCompiler(
            cache=RemoteCache(*server.address)).compile(jobs)
        assert warm.n_cache_hits == len(jobs)
        assert warm.n_compiled == 0
        assert [r.total_cost for r in warm.results] \
            == [r.total_cost for r in cold.results]

    def test_remote_matches_local_results(self, client):
        jobs = jobs_from_suite("core8", SPEC, n_iterations=4)
        local = BatchCompiler().compile(jobs)
        remote = BatchCompiler(cache=client).compile(jobs)
        assert [(r.name, r.total_cost, r.k_tilde)
                for r in remote.results] \
            == [(r.name, r.total_cost, r.k_tilde)
                for r in local.results]


#: The quick EXP-S1 grid of the end-to-end differential (4 points).
GRID = StatisticalConfig(n_values=(10, 14), m_values=(1, 2),
                         k_values=(2,), patterns_per_config=4,
                         naive_repeats=2, seed=11)


class TestRemoteDifferential:
    """EXP-S1 through a live server must be bit-identical to the local
    backends, across worker counts, with zero-recompile re-runs."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return run_statistical_comparison(GRID,
                                          cache=InMemoryLRUCache())

    def test_grid_bit_identical_across_backends_and_workers(
            self, tmp_path, baseline):
        local_dir = run_statistical_comparison(
            GRID, cache=ShardedDirectoryCache(tmp_path / "dir"))
        assert local_dir.rows == baseline.rows
        with CacheServer(ShardedDirectoryCache(tmp_path / "served")) \
                as server:
            for workers in (1, 2):
                remote = run_statistical_comparison(
                    GRID, n_workers=workers,
                    cache=open_cache(server.endpoint))
                assert remote.rows == baseline.rows
                assert remote.average_reduction_pct \
                    == baseline.average_reduction_pct
                assert remote.overall_reduction_pct \
                    == baseline.overall_reduction_pct

    def test_second_run_through_live_server_recompiles_nothing(
            self, tmp_path, baseline):
        with CacheServer(ShardedDirectoryCache(tmp_path / "grid")) \
                as server:
            first = run_statistical_comparison(
                GRID, cache=open_cache(server.endpoint))
            assert first.n_points_compiled == len(GRID.grid())
            second = run_statistical_comparison(
                GRID, n_workers=2, cache=open_cache(server.endpoint))
            assert second.n_points_compiled == 0
            assert second.n_points_cached == len(GRID.grid())
            assert second.rows == baseline.rows
        # The backing store is a plain local backend: the same entries
        # serve a direct (server-less) run just as well.
        direct = run_statistical_comparison(
            GRID, cache=ShardedDirectoryCache(tmp_path / "grid"))
        assert direct.n_points_compiled == 0
        assert direct.rows == baseline.rows


class TestStatsInvariants:
    """Property test: every backend's counters agree with a model dict
    (``hits + misses == lookups``, one store per persisted entry)."""

    def exercise(self, cache, seed: int) -> None:
        rng = random.Random(seed)
        keys = [f"digest-{i:02d}" for i in range(12)]
        model: dict[str, dict] = {}
        gets = hits = stores = 0
        for _ in range(120):
            action = rng.random()
            key = rng.choice(keys)
            if action < 0.5:
                gets += 1
                expected = model.get(key)
                assert cache.get(key) == expected
                hits += expected is not None
            elif action < 0.8:
                payload = {"v": rng.randrange(100)}
                cache.put(key, payload)
                model[key] = payload
                stores += 1
            else:
                entries = {rng.choice(keys): {"v": rng.randrange(100)}
                           for _ in range(rng.randrange(1, 4))}
                cache.put_many(entries)
                model.update(entries)
                stores += len(entries)
        assert cache.stats.hits == hits
        assert cache.stats.misses == gets - hits
        assert cache.stats.lookups == gets
        assert cache.stats.stores == stores

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_in_memory(self, seed):
        self.exercise(InMemoryLRUCache(), seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_json_file(self, tmp_path, seed):
        self.exercise(JsonFileCache(tmp_path / "store.json"), seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sharded_directory(self, tmp_path, seed):
        self.exercise(ShardedDirectoryCache(tmp_path / "store"), seed)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_tiered(self, seed):
        self.exercise(TieredCache(InMemoryLRUCache()), seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_tiered_without_a_backend(self, seed):
        self.exercise(TieredCache(), seed)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_remote(self, server, seed):
        self.exercise(RemoteCache(*server.address), seed)

    def test_remote_invariant_holds_while_degraded(self):
        remote = RemoteCache("127.0.0.1", free_port(),
                             retry_interval=60.0)
        for index in range(5):
            assert remote.get(f"k{index}") is None
        remote.put("k", {"v": 1})
        assert remote.stats.lookups == 5
        assert remote.stats.hits + remote.stats.misses == 5
        assert remote.stats.stores == 0
