"""Unit tests for AGU specifications."""

import pytest

from repro.agu.model import PRESETS, AguSpec
from repro.errors import AllocationError


class TestAguSpec:
    def test_basic(self):
        spec = AguSpec(4, 1)
        assert spec.n_registers == 4
        assert spec.modify_range == 1

    def test_rejects_zero_registers(self):
        with pytest.raises(AllocationError):
            AguSpec(0, 1)

    def test_rejects_negative_modify_range(self):
        with pytest.raises(AllocationError):
            AguSpec(4, -1)

    def test_modify_range_zero_allowed(self):
        # M=0 models an AGU with no free post-modify at all.
        assert AguSpec(1, 0).modify_range == 0

    def test_with_registers(self):
        spec = AguSpec(4, 1, "x").with_registers(8)
        assert spec.n_registers == 8
        assert spec.modify_range == 1
        assert spec.name == "x"

    def test_with_modify_range(self):
        spec = AguSpec(4, 1, "x").with_modify_range(7)
        assert spec.modify_range == 7
        assert spec.n_registers == 4

    def test_str(self):
        assert str(AguSpec(2, 1, "tight")) == "tight(K=2, M=1)"

    def test_hashable(self):
        assert len({AguSpec(2, 1), AguSpec(2, 1), AguSpec(2, 2)}) == 2


class TestPresets:
    def test_presets_are_valid(self):
        for name, spec in PRESETS.items():
            assert spec.n_registers >= 1
            assert spec.modify_range >= 0
            assert spec.name == name

    def test_expected_presets_exist(self):
        for name in ("ti_c25_like", "adsp210x_like", "dsp56k_like",
                     "tight_k2"):
            assert name in PRESETS
