"""Unit tests for the Hopcroft--Karp matcher (vs networkx as oracle)."""

import random

import networkx as nx
import pytest

from repro.pathcover.matching import HopcroftKarp, maximum_bipartite_matching


class TestSmallGraphs:
    def test_empty(self):
        solver = HopcroftKarp(0, 0, [])
        assert solver.solve() == 0

    def test_no_edges(self):
        solver = HopcroftKarp(3, 3, [[], [], []])
        assert solver.solve() == 0

    def test_perfect_matching(self):
        solver = HopcroftKarp(2, 2, [[0, 1], [0, 1]])
        assert solver.solve() == 2
        pairs = dict(solver.pairs())
        assert sorted(pairs.keys()) == [0, 1]
        assert sorted(pairs.values()) == [0, 1]

    def test_augmenting_path_needed(self):
        # Greedy left-to-right would match 0-0 and strand 1; HK must
        # find the augmenting path.
        solver = HopcroftKarp(2, 2, [[0, 1], [0]])
        assert solver.solve() == 2

    def test_star(self):
        solver = HopcroftKarp(3, 1, [[0], [0], [0]])
        assert solver.solve() == 1

    def test_chain_requiring_two_phase_augment(self):
        adjacency = [[0], [0, 1], [1, 2], [2]]
        solver = HopcroftKarp(4, 3, adjacency)
        assert solver.solve() == 3

    def test_mapping_adjacency(self):
        solver = HopcroftKarp(3, 3, {0: [1], 2: [0, 2]})
        assert solver.solve() == 2

    def test_pairs_consistency(self):
        solver = HopcroftKarp(3, 3, [[0, 1], [1, 2], [0]])
        solver.solve()
        for left, right in solver.pairs():
            assert solver.match_right[right] == left


class TestValidation:
    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            HopcroftKarp(-1, 2, [])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(ValueError):
            HopcroftKarp(1, 1, [[3]])


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_graphs_match_networkx(self, seed):
        rng = random.Random(seed)
        n_left = rng.randint(1, 12)
        n_right = rng.randint(1, 12)
        adjacency = [
            sorted({rng.randrange(n_right)
                    for _ in range(rng.randint(0, n_right))})
            for _ in range(n_left)
        ]
        size, _match = maximum_bipartite_matching(n_left, n_right,
                                                  adjacency)

        graph = nx.Graph()
        graph.add_nodes_from((f"L{i}" for i in range(n_left)),
                             bipartite=0)
        graph.add_nodes_from((f"R{j}" for j in range(n_right)),
                             bipartite=1)
        for left, neighbors in enumerate(adjacency):
            for right in neighbors:
                graph.add_edge(f"L{left}", f"R{right}")
        reference = nx.bipartite.maximum_matching(
            graph, top_nodes=[f"L{i}" for i in range(n_left)])
        assert size == len(reference) // 2

    def test_matching_is_valid(self):
        rng = random.Random(99)
        adjacency = [sorted({rng.randrange(10) for _ in range(4)})
                     for _ in range(10)]
        solver = HopcroftKarp(10, 10, adjacency)
        solver.solve()
        used_rights = [r for r in solver.match_left if r != -1]
        assert len(used_rights) == len(set(used_rights))
        for left, right in enumerate(solver.match_left):
            if right != -1:
                assert right in adjacency[left]
