"""Unit tests for the access-reordering extension."""

import pytest

from repro.agu.model import AguSpec
from repro.errors import AllocationError
from repro.ir.builder import LoopBuilder, pattern_from_offsets
from repro.ir.expr import AffineExpr
from repro.ir.types import AccessPattern, ArrayAccess
from repro.reorder.dependence import (
    dependence_edges,
    is_valid_order,
    may_alias,
)
from repro.reorder.search import (
    greedy_chain_order,
    local_search_reorder,
    reorder_accesses,
    reorder_pattern,
)
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)


def acc(array, coeff, offset, write=False):
    return ArrayAccess(array, AffineExpr(coeff, offset), is_write=write)


class TestMayAlias:
    def test_different_arrays_never(self):
        assert not may_alias(acc("A", 1, 0), acc("B", 1, 0))

    def test_same_coefficient_same_offset(self):
        assert may_alias(acc("A", 1, 3), acc("A", 1, 3))

    def test_same_coefficient_different_offset(self):
        # A[i+1] and A[i+2] are provably distinct within one iteration.
        assert not may_alias(acc("A", 1, 1), acc("A", 1, 2))

    def test_different_coefficient_divisible(self):
        # A[2i] vs A[i]: equal at i = 0 -> may alias.
        assert may_alias(acc("A", 2, 0), acc("A", 1, 0))

    def test_different_coefficient_indivisible(self):
        # A[2i] vs A[4i+1]: 2i = 4i+1 has no integer solution.
        assert not may_alias(acc("A", 2, 0), acc("A", 4, 1))


class TestDependenceEdges:
    def test_reads_never_constrain(self):
        pattern = AccessPattern((acc("A", 1, 0), acc("A", 1, 0)))
        assert dependence_edges(pattern) == frozenset()

    def test_write_read_same_element(self):
        pattern = AccessPattern((acc("A", 1, 0, write=True),
                                 acc("A", 1, 0)))
        assert dependence_edges(pattern) == {(0, 1)}

    def test_write_read_distinct_elements_free(self):
        pattern = AccessPattern((acc("A", 1, 0, write=True),
                                 acc("A", 1, 1)))
        assert dependence_edges(pattern) == frozenset()

    def test_is_valid_order(self):
        edges = frozenset({(0, 2)})
        assert is_valid_order((0, 1, 2), edges)
        assert is_valid_order((1, 0, 2), edges)
        assert not is_valid_order((2, 0, 1), edges)


class TestReorderPattern:
    def test_permutes_accesses(self, paper_pattern):
        permuted = reorder_pattern(paper_pattern, (6, 5, 4, 3, 2, 1, 0))
        assert permuted.offsets() == tuple(
            reversed(paper_pattern.offsets()))
        assert permuted.step == paper_pattern.step

    def test_rejects_non_permutation(self, paper_pattern):
        with pytest.raises(AllocationError):
            reorder_pattern(paper_pattern, (0, 0, 1, 2, 3, 4, 5))


class TestGreedyChainOrder:
    def test_is_dependence_respecting_permutation(self):
        builder = LoopBuilder()
        builder.read("x", 5).write("y", 0).read("x", 0).read("y", 0)
        pattern = builder.build_pattern()
        order = greedy_chain_order(pattern, 1)
        assert sorted(order) == list(range(4))
        assert is_valid_order(order, dependence_edges(pattern))

    def test_groups_nearby_offsets(self):
        # 0, 5, 1, 6, 2, 7 without dependences: the greedy chains the
        # two arithmetic runs.
        pattern = pattern_from_offsets([0, 5, 1, 6, 2, 7])
        order = greedy_chain_order(pattern, 1)
        offsets = [pattern[position].offset for position in order]
        assert offsets == [0, 1, 2, 5, 6, 7] or \
            offsets == [0, 1, 2, 7, 6, 5]


class TestLocalSearch:
    def test_never_worse_than_start(self, rng):
        spec = AguSpec(2, 1)
        for trial in range(10):
            offsets = [rng.randint(-5, 5) for _ in range(9)]
            pattern = pattern_from_offsets(offsets)
            result = local_search_reorder(pattern, spec)
            assert result.cost <= result.baseline_cost

    def test_respects_dependences(self):
        builder = LoopBuilder()
        builder.write("x", 0).read("x", 0).write("x", 0).read("x", 0)
        pattern = builder.build_pattern()
        result = local_search_reorder(pattern, AguSpec(1, 1))
        assert result.order == (0, 1, 2, 3)  # fully serialized

    def test_invalid_start_order_rejected(self, paper_pattern):
        with pytest.raises(AllocationError):
            local_search_reorder(paper_pattern, AguSpec(2, 1),
                                 start_order=(0, 1))


class TestReorderAccesses:
    def test_improves_zigzag(self):
        # With K=1 and M=1 the interleaved runs are expensive in program
        # order but free once chained.
        pattern = pattern_from_offsets([0, 5, 1, 6, 2, 7])
        result = reorder_accesses(pattern, AguSpec(1, 1))
        assert result.cost < result.baseline_cost

    def test_never_worse_and_valid_on_random(self, rng):
        spec = AguSpec(2, 1)
        patterns = generate_batch(
            RandomPatternConfig(10, offset_span=6, write_fraction=0.3),
            10, seed=31)
        for pattern in patterns:
            result = reorder_accesses(pattern, spec)
            assert result.cost <= result.baseline_cost
            assert is_valid_order(result.order,
                                  dependence_edges(pattern))
            assert sorted(result.order) == list(range(len(pattern)))

    def test_already_free_pattern_untouched(self):
        pattern = pattern_from_offsets([0, 1, 2])
        result = reorder_accesses(pattern, AguSpec(1, 1))
        assert result.baseline_cost == 0
        assert result.cost == 0
        assert not result.is_reordered

    def test_reordered_pattern_allocates_to_reported_cost(self):
        from repro.core.allocator import AddressRegisterAllocator
        pattern = pattern_from_offsets([0, 5, 1, 6, 2, 7])
        spec = AguSpec(1, 1)
        result = reorder_accesses(pattern, spec)
        check = AddressRegisterAllocator(spec).allocate(result.pattern)
        assert check.total_cost == result.cost
