"""Golden regression table for the whole kernel library.

For every bundled DSP kernel, freeze two end-to-end numbers:

* ``K~`` — the minimum virtual-register count under ``M = 1``
  (``None`` where no zero-cost cover exists: stride-2 kernels);
* the best-pair cost on a tight 2-register AGU.

Any change to the frontend, the distance model, phase 1, or phase 2
that shifts results on realistic inputs trips this immediately.  The
numbers were cross-checked at introduction time (phase 1 is exact for
these sizes, and spot instances were verified against the exhaustive
allocator).
"""

import pytest

from repro.agu.model import AguSpec
from repro.core.allocator import AddressRegisterAllocator
from repro.workloads.kernels import KERNELS

#: kernel -> (K~ at M=1, best-pair cost at K=2, M=1)
GOLDEN: dict[str, tuple[int | None, int]] = {
    "autocorr4": (2, 0),
    "biquad_cascade2": (7, 4),
    "complex_mac": (6, 8),
    "convolution8": (13, 3),
    "correlation5": (5, 3),
    "delay_line": (2, 0),
    "dot_product": (2, 0),
    "downsample2": (None, 1),
    "energy": (1, 0),
    "fft_butterfly": (2, 0),
    "fir16": (15, 3),
    "fir4_decimate2": (4, 3),
    "fir8": (8, 3),
    "fir8_symmetric": (8, 8),
    "goertzel": (3, 1),
    "iir_biquad_df1": (5, 2),
    "iir_biquad_df2": (4, 4),
    "lattice2": (4, 3),
    "lms_update": (2, 0),
    "matvec_row4": (4, 3),
    "moving_average4": (5, 1),
    "paper_example": (3, 2),
    "saxpy": (2, 0),
    "vector_add": (3, 2),
    "vector_scale": (2, 0),
    "wavelet_lift": (None, 1),
}


def test_golden_table_covers_the_library():
    assert set(GOLDEN) == set(KERNELS)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_kernel_k_tilde_and_tight_cost(name):
    expected_k_tilde, expected_cost = GOLDEN[name]
    kernel = KERNELS[name].kernel()

    rich = AddressRegisterAllocator(AguSpec(8, 1)).allocate(kernel)
    assert rich.k_tilde == expected_k_tilde, \
        f"{name}: K~ drifted from {expected_k_tilde} to {rich.k_tilde}"

    tight = AddressRegisterAllocator(AguSpec(2, 1)).allocate(kernel)
    assert tight.total_cost == expected_cost, \
        f"{name}: K=2 cost drifted from {expected_cost} " \
        f"to {tight.total_cost}"


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_tight_cost_bounded_by_access_count(name):
    """Sanity on the golden values themselves: the allocator can always
    fall back to one explicit computation per access."""
    kernel = KERNELS[name].kernel()
    _k_tilde, cost = GOLDEN[name]
    assert 0 <= cost <= len(kernel.pattern)
