"""Unit tests for the address-distance and transition-cost model."""

import pytest

from repro.errors import GraphError
from repro.graph.distance import (
    intra_distance,
    is_zero_cost,
    transition_cost,
    wrap_distance,
)
from repro.ir.expr import AffineExpr
from repro.ir.types import ArrayAccess


def acc(array: str, coeff: int, offset: int) -> ArrayAccess:
    return ArrayAccess(array, AffineExpr(coeff, offset))


class TestIntraDistance:
    def test_same_array_same_coefficient(self):
        assert intra_distance(acc("A", 1, 1), acc("A", 1, -2)) == -3

    def test_different_arrays_none(self):
        assert intra_distance(acc("A", 1, 0), acc("B", 1, 0)) is None

    def test_different_coefficients_none(self):
        assert intra_distance(acc("A", 1, 0), acc("A", 2, 0)) is None

    def test_loop_invariant_accesses(self):
        assert intra_distance(acc("h", 0, 3), acc("h", 0, 5)) == 2

    def test_asymmetry(self):
        assert intra_distance(acc("A", 1, 0), acc("A", 1, 4)) == 4
        assert intra_distance(acc("A", 1, 4), acc("A", 1, 0)) == -4


class TestWrapDistance:
    def test_paper_model(self):
        # Last access A[i+o_l], first access A[i+o_f] of the next
        # iteration: distance = o_f + S - o_l.
        assert wrap_distance(acc("A", 1, 2), acc("A", 1, 1), step=1) == 0

    def test_singleton_path(self):
        # A register following one access advances by c*S per iteration.
        assert wrap_distance(acc("A", 1, 5), acc("A", 1, 5), step=1) == 1
        assert wrap_distance(acc("A", 2, 5), acc("A", 2, 5), step=1) == 2
        assert wrap_distance(acc("A", 0, 5), acc("A", 0, 5), step=1) == 0

    def test_negative_step(self):
        assert wrap_distance(acc("A", 1, 0), acc("A", 1, 0), step=-2) == -2

    def test_different_arrays_none(self):
        assert wrap_distance(acc("A", 1, 0), acc("B", 1, 0), step=1) is None

    def test_different_coefficients_none(self):
        assert wrap_distance(acc("A", 2, 0), acc("A", 1, 0), step=1) is None


class TestCost:
    @pytest.mark.parametrize("distance, m, free", [
        (0, 0, True), (0, 1, True), (1, 1, True), (-1, 1, True),
        (2, 1, False), (-2, 1, False), (4, 4, True), (5, 4, False),
        (None, 1, False), (None, 100, False),
    ])
    def test_is_zero_cost(self, distance, m, free):
        assert is_zero_cost(distance, m) is free

    def test_transition_cost_is_binary(self):
        assert transition_cost(0, 1) == 0
        assert transition_cost(3, 1) == 1
        assert transition_cost(-300, 1) == 1
        assert transition_cost(None, 1) == 1

    def test_negative_modify_range_rejected(self):
        with pytest.raises(GraphError):
            is_zero_cost(0, -1)
