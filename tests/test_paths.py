"""Unit tests for Path / PathCover datatypes and the merge operator."""

import pytest

from repro.errors import PathCoverError
from repro.pathcover.paths import Path, PathCover


class TestPath:
    def test_basic_accessors(self):
        path = Path((1, 4, 6))
        assert path.first == 1
        assert path.last == 6
        assert len(path) == 3
        assert list(path) == [1, 4, 6]
        assert 4 in path and 5 not in path

    def test_transitions(self):
        assert list(Path((0, 2, 5)).transitions()) == [(0, 2), (2, 5)]
        assert list(Path((3,)).transitions()) == []

    def test_str_uses_paper_labels(self):
        assert str(Path((0, 2))) == "(a_1, a_3)"

    def test_list_input_coerced(self):
        assert Path([0, 1]).indices == (0, 1)

    @pytest.mark.parametrize("indices", [(), (2, 1), (0, 0), (-1,), (0, "x")])
    def test_invalid_paths_rejected(self, indices):
        with pytest.raises(PathCoverError):
            Path(tuple(indices))


class TestMergeOperator:
    def test_paper_example(self):
        # P1 = (a_1, a_4, a_6), P2 = (a_3, a_5)
        # P1 (+) P2 = (a_1, a_3, a_4, a_5, a_6)
        p1 = Path((0, 3, 5))
        p2 = Path((2, 4))
        assert p1.merge(p2).indices == (0, 2, 3, 4, 5)

    def test_commutative(self):
        p1, p2 = Path((0, 3)), Path((1, 2))
        assert p1.merge(p2) == p2.merge(p1)

    def test_overlap_rejected(self):
        with pytest.raises(PathCoverError, match="overlapping"):
            Path((0, 1)).merge(Path((1, 2)))

    def test_preserves_all_members(self):
        merged = Path((0, 9)).merge(Path((4,)))
        assert merged.indices == (0, 4, 9)


class TestPathCover:
    def test_partition_validated(self):
        cover = PathCover((Path((0, 2)), Path((1,))), 3)
        assert cover.n_paths == 2
        assert cover.n_accesses == 3

    def test_canonical_ordering(self):
        cover = PathCover((Path((2,)), Path((0, 1))), 3)
        assert [path.first for path in cover] == [0, 2]

    def test_equality_ignores_construction_order(self):
        a = PathCover((Path((2,)), Path((0, 1))), 3)
        b = PathCover((Path((0, 1)), Path((2,))), 3)
        assert a == b

    def test_missing_position_rejected(self):
        with pytest.raises(PathCoverError, match="misses"):
            PathCover((Path((0,)),), 2)

    def test_double_cover_rejected(self):
        with pytest.raises(PathCoverError, match="twice"):
            PathCover((Path((0, 1)), Path((1,))), 2)

    def test_out_of_range_rejected(self):
        with pytest.raises(PathCoverError, match="out of range"):
            PathCover((Path((0, 5)),), 2)

    def test_from_lists_sorts_positions(self):
        cover = PathCover.from_lists([[2, 0], [1]], 3)
        assert cover.paths[0].indices == (0, 2)

    def test_finest(self):
        cover = PathCover.finest(4)
        assert cover.n_paths == 4
        assert all(len(path) == 1 for path in cover)

    def test_empty(self):
        cover = PathCover((), 0)
        assert cover.n_paths == 0
        assert cover.assignment() == ()

    def test_assignment(self):
        cover = PathCover((Path((0, 2)), Path((1, 3))), 4)
        assert cover.assignment() == (0, 1, 0, 1)

    def test_path_of(self):
        cover = PathCover((Path((0, 2)), Path((1,))), 3)
        assert cover.path_of(1).indices == (1,)
        with pytest.raises(PathCoverError):
            cover.path_of(9)

    def test_replace_merges_two_paths(self):
        p1, p2, p3 = Path((0,)), Path((1,)), Path((2,))
        cover = PathCover((p1, p2, p3), 3)
        # replace() is identity-based: fetch the canonical instances.
        first, second, third = cover.paths
        merged = first.merge(third)
        replaced = cover.replace((first, third), merged)
        assert replaced.n_paths == 2
        assert merged in replaced.paths

    def test_replace_requires_member_paths(self):
        cover = PathCover((Path((0,)), Path((1,))), 2)
        with pytest.raises(PathCoverError):
            cover.replace((Path((0,)), Path((0,))), Path((0, 1)))

    def test_str(self):
        cover = PathCover((Path((0, 1)), Path((2,))), 3)
        assert str(cover) == "{(a_1, a_2), (a_3)}"
