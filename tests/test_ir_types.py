"""Unit tests for the core IR datatypes."""

import pytest

from repro.errors import IrError
from repro.ir.builder import pattern_from_offsets
from repro.ir.expr import AffineExpr
from repro.ir.types import (
    AccessPattern,
    ArrayAccess,
    ArrayDecl,
    Kernel,
    Loop,
    ScalarUse,
)


class TestArrayDecl:
    def test_defaults(self):
        decl = ArrayDecl("A")
        assert decl.element_size == 1
        assert decl.length is None

    def test_rejects_bad_name(self):
        with pytest.raises(IrError):
            ArrayDecl("9lives")

    def test_rejects_empty_name(self):
        with pytest.raises(IrError):
            ArrayDecl("")

    def test_rejects_zero_element_size(self):
        with pytest.raises(IrError):
            ArrayDecl("A", element_size=0)

    def test_rejects_negative_length(self):
        with pytest.raises(IrError):
            ArrayDecl("A", length=-1)


class TestArrayAccess:
    def test_offset_and_coefficient(self):
        access = ArrayAccess("A", AffineExpr(2, -3))
        assert access.offset == -3
        assert access.coefficient == 2

    def test_group_key(self):
        assert ArrayAccess("A", AffineExpr(1, 5)).group_key == ("A", 1)
        assert ArrayAccess("B", AffineExpr(0, 5)).group_key == ("B", 0)

    def test_str_marks_writes(self):
        read = ArrayAccess("A", AffineExpr(1, 1))
        write = ArrayAccess("A", AffineExpr(1, 1), is_write=True)
        assert str(read) == "A[i+1]"
        assert str(write) == "A[i+1]="

    def test_rejects_bad_array_name(self):
        with pytest.raises(IrError):
            ArrayAccess("not a name", AffineExpr(1, 0))

    def test_rejects_non_affine_index(self):
        with pytest.raises(IrError):
            ArrayAccess("A", 3)


class TestScalarUse:
    def test_valid(self):
        use = ScalarUse("acc", is_write=True)
        assert use.name == "acc"
        assert use.is_write

    def test_rejects_bad_name(self):
        with pytest.raises(IrError):
            ScalarUse("3x")


class TestAccessPattern:
    def test_sequence_protocol(self, paper_pattern):
        assert len(paper_pattern) == 7
        assert [a.offset for a in paper_pattern] == [1, 0, 2, -1, 1, 0, -2]
        assert paper_pattern[2].offset == 2

    def test_labels_follow_the_paper(self, paper_pattern):
        assert paper_pattern.label(0) == "a_1"
        assert paper_pattern.label(6) == "a_7"

    def test_explicit_label_wins(self):
        access = ArrayAccess("A", AffineExpr(1, 0), label="x_load")
        pattern = AccessPattern((access,))
        assert pattern.label(0) == "x_load"

    def test_offsets(self, paper_pattern):
        assert paper_pattern.offsets() == (1, 0, 2, -1, 1, 0, -2)

    def test_arrays_in_first_use_order(self):
        pattern = AccessPattern((
            ArrayAccess("B", AffineExpr(1, 0)),
            ArrayAccess("A", AffineExpr(1, 0)),
            ArrayAccess("B", AffineExpr(1, 1)),
        ))
        assert pattern.arrays() == ("B", "A")

    def test_group_keys_and_positions(self):
        pattern = AccessPattern((
            ArrayAccess("A", AffineExpr(1, 0)),
            ArrayAccess("A", AffineExpr(0, 4)),
            ArrayAccess("A", AffineExpr(1, 2)),
        ))
        assert pattern.group_keys() == (("A", 1), ("A", 0))
        assert pattern.positions_in_group(("A", 1)) == (0, 2)
        assert pattern.positions_in_group(("A", 0)) == (1,)

    def test_subsequence(self, paper_pattern):
        subset = paper_pattern.subsequence([0, 2, 4])
        assert [a.offset for a in subset] == [1, 2, 1]

    def test_with_step(self, paper_pattern):
        stepped = paper_pattern.with_step(4)
        assert stepped.step == 4
        assert stepped.accesses == paper_pattern.accesses

    def test_rejects_zero_step(self):
        with pytest.raises(IrError):
            AccessPattern((), step=0)

    def test_rejects_non_access_elements(self):
        with pytest.raises(IrError):
            AccessPattern(("A[i]",))

    def test_empty_pattern_allowed(self):
        pattern = AccessPattern(())
        assert len(pattern) == 0
        assert pattern.arrays() == ()

    def test_equality(self):
        assert pattern_from_offsets([1, 2]) == pattern_from_offsets([1, 2])
        assert pattern_from_offsets([1, 2]) != pattern_from_offsets([2, 1])


class TestLoop:
    def test_iteration_values(self):
        loop = Loop(pattern_from_offsets([0]), start=2, n_iterations=4)
        assert loop.iteration_values() == [2, 3, 4, 5]

    def test_iteration_values_with_step(self):
        loop = Loop(pattern_from_offsets([0], step=3), start=1,
                    n_iterations=3)
        assert loop.iteration_values() == [1, 4, 7]

    def test_override_count(self):
        loop = Loop(pattern_from_offsets([0]), start=0, n_iterations=10)
        assert loop.iteration_values(2) == [0, 1]

    def test_symbolic_bound_requires_count(self):
        loop = Loop(pattern_from_offsets([0]), bound_symbol="N")
        with pytest.raises(IrError, match="symbolic"):
            loop.iteration_values()
        assert loop.iteration_values(3) == [0, 1, 2]

    def test_rejects_negative_count(self):
        with pytest.raises(IrError):
            Loop(pattern_from_offsets([0]), n_iterations=-1)

    def test_str_mentions_var(self):
        loop = Loop(pattern_from_offsets([0]), start=0, n_iterations=8)
        assert "i++" in str(loop)


class TestKernel:
    def _kernel(self) -> Kernel:
        pattern = AccessPattern((
            ArrayAccess("x", AffineExpr(1, 0)),
            ArrayAccess("y", AffineExpr(1, 0), is_write=True),
        ))
        return Kernel(
            name="copy",
            loop=Loop(pattern, n_iterations=8),
            arrays=(ArrayDecl("x", length=16), ArrayDecl("y", length=16)),
            scalar_uses=(ScalarUse("t"), ScalarUse("t", is_write=True)),
        )

    def test_pattern_shortcut(self):
        kernel = self._kernel()
        assert len(kernel.pattern) == 2

    def test_array_lookup(self):
        kernel = self._kernel()
        assert kernel.array("x").length == 16
        with pytest.raises(IrError):
            kernel.array("z")

    def test_scalar_sequence(self):
        assert self._kernel().scalar_sequence() == ("t", "t")

    def test_rejects_undeclared_array_access(self):
        pattern = AccessPattern((ArrayAccess("q", AffineExpr(1, 0)),))
        with pytest.raises(IrError, match="undeclared"):
            Kernel(name="bad", loop=Loop(pattern, n_iterations=1),
                   arrays=())

    def test_rejects_duplicate_declarations(self):
        pattern = AccessPattern((ArrayAccess("x", AffineExpr(1, 0)),))
        with pytest.raises(IrError, match="duplicate"):
            Kernel(name="bad", loop=Loop(pattern, n_iterations=1),
                   arrays=(ArrayDecl("x"), ArrayDecl("x")))
