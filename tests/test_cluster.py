"""Tests of the distributed execution service (`repro.batch.cluster`)
and the engine's executor seam.

The contract under test: `BatchCompiler` behaves identically whatever
executes its cache misses -- inline, a local process pool, or a fleet
of workers leasing jobs from a `JobServer` -- including the failure
semantics (`BatchError` naming the job, completed work persisted
before the error propagates, resumable caches) and survival of worker
death mid-job (lease requeue, bit-identical results).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from _cluster_jobs import (
    CrashingJob,
    HugeResultJob,
    SlowOnceJob,
    TinyJob,
    TinyResult,
    thread_fleet,
)

import repro
from repro.agu.model import AguSpec
from repro.analysis.experiments import (
    quick_statistical_config,
    run_statistical_comparison,
)
from repro.batch.cache import ShardedDirectoryCache
from repro.batch.cluster import (
    ClusterExecutor,
    JobServer,
    Worker,
    cluster_executor_from_spec,
    decode_payload,
    encode_payload,
    parse_endpoint,
)
from repro.batch.digest import job_digest
from repro.batch.engine import (
    BatchCompiler,
    InlineExecutor,
    LocalPoolExecutor,
    open_executor,
)
from repro.batch.jobs import jobs_from_suite
from repro.errors import BatchError

SPEC = AguSpec(4, 1)


def suite_jobs(count: int = 6):
    return jobs_from_suite("full", SPEC, n_iterations=4)[:count]


def spawn_worker(endpoint: str, *extra: str) -> subprocess.Popen:
    """A real ``repro-agu worker`` subprocess that can unpickle both
    `repro.batch` jobs and this suite's `_cluster_jobs` helpers."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    tests_dir = str(Path(__file__).resolve().parent)
    extra_path = [env["PYTHONPATH"]] if env.get("PYTHONPATH") else []
    env["PYTHONPATH"] = os.pathsep.join([src, tests_dir] + extra_path)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli.main", "worker", endpoint,
         "--poll", "0.2", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)


def unused_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestSpecParsing:
    def test_open_executor_inline(self):
        assert isinstance(open_executor("inline"), InlineExecutor)

    def test_open_executor_local_pool(self):
        executor = open_executor("local:3")
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.n_workers == 3

    def test_open_executor_local_defaults_to_cpu_count(self):
        executor = open_executor("local")
        assert executor.n_workers == (os.cpu_count() or 1)

    def test_open_executor_tcp(self):
        executor = open_executor("tcp://127.0.0.1:8742?timeout=7")
        assert isinstance(executor, ClusterExecutor)
        assert (executor.host, executor.port) == ("127.0.0.1", 8742)
        assert executor.timeout == 7.0

    def test_instances_pass_through(self):
        executor = InlineExecutor()
        assert open_executor(executor) is executor

    @pytest.mark.parametrize("spec", [
        "pool", "local:x", "local:0", "redis://h:1", "tcp://nope",
        "tcp://h:1/path", "tcp://127.0.0.1:1?bogus=1",
        "tcp://127.0.0.1:1?timeout=x",
    ])
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(BatchError):
            open_executor(spec)

    def test_parse_endpoint_options(self):
        host, port, options = parse_endpoint(
            "tcp://[::1]:9000?timeout=2.5", {"timeout": float})
        assert (host, port) == ("::1", 9000)
        assert options == {"timeout": 2.5}

    def test_parse_endpoint_is_the_shared_grammar(self):
        """Cache specs and executor specs parse through one function
        (see repro.batch.service.parse_endpoint)."""
        import repro.batch.service as service

        assert parse_endpoint is service.parse_endpoint
        with pytest.raises(BatchError, match="unknown option"):
            parse_endpoint("tcp://h:1?bogus=1", {"timeout": float})

    def test_cluster_executor_validates_port_and_timeout(self):
        with pytest.raises(BatchError):
            ClusterExecutor("h", 0)
        with pytest.raises(BatchError):
            ClusterExecutor("h", 80, timeout=0)

    def test_compiler_rejects_workers_plus_executor(self):
        with pytest.raises(BatchError):
            BatchCompiler(n_workers=2, executor="inline")

    def test_compiler_accepts_spec_strings(self):
        report = BatchCompiler(executor="inline").compile(suite_jobs(2))
        assert report.n_jobs == 2


class TestPayloadCodec:
    def test_round_trip(self):
        job = TinyJob(name="codec", value=21)
        assert decode_payload(encode_payload(job)) == job


class TestProtocol:
    """Direct `handle_worker_request` coverage (no sockets)."""

    def test_ping_and_unknown_op(self):
        server = JobServer()
        try:
            assert server.handle_worker_request(
                {"op": "ping"}, owner=object())["ok"]
            response = server.handle_worker_request(
                {"op": "nope"}, owner=object())
            assert not response["ok"] and "unknown op" in response["error"]
        finally:
            server.shutdown()

    def test_lease_idle_complete_flow(self):
        server = JobServer()
        try:
            owner = object()
            assert server.handle_worker_request(
                {"op": "lease", "wait": 0}, owner)["idle"]
            job = TinyJob(name="flow", value=3)
            batch = server.create_batch([encode_payload(job)])
            leased = server.handle_worker_request(
                {"op": "lease", "wait": 0}, owner)
            assert leased["index"] == 0
            assert decode_payload(leased["job"]) == job
            result = decode_payload(leased["job"]).execute()
            done = server.handle_worker_request(
                {"op": "complete", "lease": leased["lease"],
                 "result": encode_payload(result)}, owner)
            assert done == {"ok": True}
            event = batch.events.get(timeout=1.0)
            assert event["event"] == "result" and event["index"] == 0
            assert batch.events.get(timeout=1.0)["event"] == "done"
            assert server.stats.completed == 1
        finally:
            server.shutdown()

    def test_stale_lease_is_acknowledged_but_ignored(self):
        server = JobServer()
        try:
            response = server.handle_worker_request(
                {"op": "complete", "lease": "l999", "result":
                 encode_payload(TinyResult("x", "d", 1))}, object())
            assert response == {"ok": True, "stale": True}
        finally:
            server.shutdown()

    def test_malformed_ops_answer_errors(self):
        server = JobServer()
        try:
            for bad in ({"op": "lease", "wait": -1},
                        {"op": "complete", "lease": 3, "result": "x"},
                        {"op": "fail"}):
                assert not server.handle_worker_request(bad, object())["ok"]
        finally:
            server.shutdown()

    def test_status_counts_queue_and_workers(self):
        with thread_fleet(n_workers=2) as server:
            deadline = time.monotonic() + 5.0
            while server.n_connected_workers < 2 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            status = server.handle_worker_request(
                {"op": "status"}, object())
            assert status["ok"] and status["workers"] == 2
            assert status["queued"] == 0 and status["batches"] == 0

    def test_rejects_invalid_server_parameters(self):
        with pytest.raises(BatchError):
            JobServer(lease_timeout=0)
        with pytest.raises(BatchError):
            JobServer(max_attempts=0)
        with pytest.raises(BatchError):
            JobServer(idle_timeout=0)

    def test_idle_connection_is_closed_after_the_timeout(self):
        """A connection that never speaks (a stalled or half-open
        peer) is dropped after idle_timeout instead of pinning its
        handler thread for the life of the server."""
        with thread_fleet(n_workers=1, idle_timeout=0.2) as server:
            with socket.create_connection(server.address,
                                          timeout=5) as sock:
                sock.settimeout(5.0)
                assert sock.recv(1) == b""  # server-side close
            # Healthy workers poll well inside the timeout: the fleet
            # still executes batches while stalled peers are dropped.
            report = BatchCompiler(
                executor=ClusterExecutor(*server.address)).compile(
                [TinyJob("idle-check", 1)])
            assert report.n_jobs == 1


class TestClusterExecution:
    """End-to-end through the engine, thread-fleet topology."""

    def test_suite_matches_inline_bit_for_bit(self):
        jobs = suite_jobs(6)
        inline = BatchCompiler().compile(jobs)
        with thread_fleet(n_workers=2) as server:
            clustered = BatchCompiler(
                executor=ClusterExecutor(*server.address)).compile(jobs)
            assert server.stats.completed == len(jobs)
        assert [(r.name, r.digest, r.total_cost, r.k_tilde,
                 r.overhead_per_iteration)
                for r in clustered.results] \
            == [(r.name, r.digest, r.total_cost, r.k_tilde,
                 r.overhead_per_iteration)
                for r in inline.results]

    def test_streaming_persists_every_point(self, tmp_path):
        jobs = suite_jobs(5)
        store = ShardedDirectoryCache(tmp_path / "store")
        with thread_fleet(n_workers=2) as server:
            compiler = BatchCompiler(
                cache=store, executor=ClusterExecutor(*server.address))
            delivered = dict(compiler.as_completed(jobs))
        assert sorted(delivered) == list(range(len(jobs)))
        assert len(store) == len(jobs)
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(jobs)
        assert resumed.n_cache_hits == len(jobs)

    def test_duplicate_digests_compute_once(self):
        job = TinyJob(name="dup", value=5)
        twin = TinyJob(name="dup-twin", value=5)
        with thread_fleet(n_workers=2) as server:
            compiler = BatchCompiler(
                executor=ClusterExecutor(*server.address))
            results = [result for _, result
                       in compiler.as_completed([job, twin])]
            assert server.stats.completed == 1
        assert {result.name for result in results} \
            == {"dup", "dup-twin"}
        assert sum(result.from_cache for result in results) == 1

    def test_heartbeats_keep_slow_jobs_alive(self, tmp_path):
        """A job slower than the client's frame timeout must not trip
        the went-silent detection: heartbeats flow while it runs."""
        marker = tmp_path / "never-used"
        marker.write_text("skip the sleep? no: sleep every time")
        slow = SlowOnceJob(name="slowish", marker=str(tmp_path / "m"),
                           seconds=1.2)
        with thread_fleet(n_workers=1, heartbeat=0.1) as server:
            executor = ClusterExecutor(*server.address, timeout=0.6)
            report = BatchCompiler(executor=executor).compile([slow])
        assert report.results[0].value == 7

    def test_dead_server_fails_the_batch_loudly(self):
        executor = ClusterExecutor("127.0.0.1", unused_port(),
                                   timeout=0.5)
        with pytest.raises(BatchError, match="cannot reach job server"):
            BatchCompiler(executor=executor).compile(suite_jobs(2))

    def test_server_shutdown_mid_batch_fails_loudly(self, tmp_path):
        server = JobServer()
        server.start()
        executor = ClusterExecutor(*server.address, timeout=0.5)
        stream = BatchCompiler(executor=executor).as_completed(
            [TinyJob(name="stranded")])
        server.shutdown()
        with pytest.raises(BatchError):
            list(stream)

    def test_abandoned_stream_cancels_queued_jobs(self, tmp_path):
        """Breaking out of as_completed cancels the batch: queued jobs
        drop server-side and the server stays serviceable."""
        store = ShardedDirectoryCache(tmp_path / "store")
        slow_jobs = [SlowOnceJob(name=f"s{i}",
                                 marker=str(tmp_path / f"m{i}"),
                                 seconds=0.3, value=i)
                     for i in range(6)]
        with thread_fleet(n_workers=1) as server:
            compiler = BatchCompiler(
                cache=store, executor=ClusterExecutor(*server.address))
            for _index, _result in compiler.as_completed(slow_jobs):
                break  # abandon after the first delivery
            assert server.stats.dropped >= 1
            # The server still serves new batches afterwards.
            report = BatchCompiler(
                executor=ClusterExecutor(*server.address)).compile(
                    [TinyJob(name="after", value=1)])
            assert report.results[0].value == 2
        # Everything delivered or drained was persisted.
        assert len(store) >= 1


class TestClusterFailureSemantics:
    """The engine's failure contract, served by remote workers."""

    def test_crash_names_job_and_digest_and_resumes(self, tmp_path):
        survivors = suite_jobs(4)
        jobs = [*survivors, CrashingJob(name="poison")]
        store = ShardedDirectoryCache(tmp_path / "store")
        with thread_fleet(n_workers=2) as server:
            compiler = BatchCompiler(
                cache=store, executor=ClusterExecutor(*server.address))
            with pytest.raises(BatchError) as caught:
                for _ in compiler.as_completed(jobs):
                    pass
            assert server.stats.failed == 1
        assert caught.value.job_name == "poison"
        assert caught.value.digest == job_digest(CrashingJob("poison"))
        assert "injected crash" in str(caught.value)
        assert "RuntimeError" in str(caught.value)
        # Completed survivors persisted; the re-run resumes.
        assert len(store) >= 1
        fresh = BatchCompiler().compile(survivors)
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(survivors)
        assert resumed.n_cache_hits == len(store)
        assert [(r.name, r.total_cost) for r in resumed.results] \
            == [(r.name, r.total_cost) for r in fresh.results]

    def test_compile_path_names_the_failing_job(self):
        with thread_fleet(n_workers=2) as server:
            with pytest.raises(BatchError) as caught:
                BatchCompiler(
                    executor=ClusterExecutor(*server.address)).compile(
                        [*suite_jobs(2), CrashingJob(name="poison")])
        assert caught.value.job_name == "poison"
        assert caught.value.digest is not None

    def test_job_failures_are_never_requeued(self):
        """A deterministic crash reaches the client once; the server
        does not burn further leases on it."""
        with thread_fleet(n_workers=2) as server:
            with pytest.raises(BatchError):
                BatchCompiler(
                    executor=ClusterExecutor(*server.address)).compile(
                        [CrashingJob(name="poison")])
            assert server.stats.failed == 1
            assert server.stats.requeued == 0

    def test_oversized_result_fails_the_job_not_the_worker(
            self, monkeypatch):
        """A result that cannot fit one protocol frame is reported as
        that job's failure; the worker survives to serve the next
        batch instead of cascading the fleet down."""
        import repro.batch.service as service

        monkeypatch.setattr(service, "MAX_FRAME_BYTES", 4096)
        with thread_fleet(n_workers=1) as server:
            executor = ClusterExecutor(*server.address)
            with pytest.raises(BatchError) as caught:
                BatchCompiler(executor=executor).compile(
                    [HugeResultJob(name="blob")])
            assert caught.value.job_name == "blob"
            assert "result too large" in str(caught.value)
            report = BatchCompiler(executor=executor).compile(
                [TinyJob(name="next", value=9)])
            assert report.results[0].value == 18
            assert server.stats.failed == 1
            assert server.stats.completed == 1

    def test_zero_worker_submit_warns_instead_of_silence(self, caplog):
        """Submitting to an empty fleet logs a loud hint (the batch
        legitimately waits for workers to join)."""
        import logging

        with JobServer() as server:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.batch.cluster"):
                stream = ClusterExecutor(*server.address).run(
                    [TinyJob(name="waiting")])
            assert "no connected workers" in caplog.text
            assert stream.shutdown() == {}
            assert server.stats.dropped == 1


class TestLeaseRecovery:
    def test_expired_lease_is_requeued_and_completed(self):
        """A worker that leases a job and goes silent loses it to the
        reaper; the job completes on a live worker."""
        server = JobServer(lease_timeout=0.2)
        try:
            silent = object()
            job = TinyJob(name="lost", value=4)
            batch = server.create_batch([encode_payload(job)])
            leased = server.handle_worker_request(
                {"op": "lease", "wait": 0}, silent)
            assert leased["index"] == 0
            time.sleep(0.25)
            assert server.reap_expired_leases() == 1
            assert server.stats.requeued == 1
            # A live worker now gets the requeued job...
            relessed = server.handle_worker_request(
                {"op": "lease", "wait": 0}, object())
            assert relessed["index"] == 0
            result = decode_payload(relessed["job"]).execute()
            assert server.handle_worker_request(
                {"op": "complete", "lease": relessed["lease"],
                 "result": encode_payload(result)}, object()) \
                == {"ok": True}
            # ...and the silent worker's late completion is stale.
            assert server.handle_worker_request(
                {"op": "complete", "lease": leased["lease"],
                 "result": encode_payload(result)}, silent) \
                == {"ok": True, "stale": True}
            assert batch.events.get(timeout=1.0)["event"] == "result"
            assert batch.events.get(timeout=1.0)["event"] == "done"
            assert server.stats.completed == 1
        finally:
            server.shutdown()

    def test_gives_up_after_max_attempts(self):
        """A job that loses every worker it touches eventually fails
        the batch instead of looping forever."""
        server = JobServer(lease_timeout=60.0, max_attempts=2)
        try:
            batch = server.create_batch(
                [encode_payload(TinyJob(name="doomed"))])
            for attempt in range(2):
                leased = server.handle_worker_request(
                    {"op": "lease", "wait": 0}, object())
                assert "lease" in leased
                lease = server._leases[leased["lease"]]
                with server._lock:
                    server._requeue_locked(lease, reason="test kill")
            event = batch.events.get(timeout=1.0)
            assert event["event"] == "failed"
            assert event["error_type"] == "WorkerLost"
            assert batch.events.get(timeout=1.0)["event"] == "aborted"
        finally:
            server.shutdown()

    def test_worker_killed_mid_job_requeues_and_completes(
            self, tmp_path):
        """The headline recovery scenario: SIGKILL a worker process
        mid-job; the lease requeues on connection loss and the job
        completes on another worker, bit-identical to a clean run."""
        marker = tmp_path / "leased-once"
        jobs = [SlowOnceJob(name="victim", marker=str(marker),
                            seconds=60.0, value=11),
                *[TinyJob(name=f"t{i}", value=i) for i in range(3)]]
        store = ShardedDirectoryCache(tmp_path / "store")
        with JobServer(lease_timeout=120.0) as server:
            first = spawn_worker(server.endpoint)
            try:
                report_box: list = []
                runner = threading.Thread(
                    target=lambda: report_box.append(
                        BatchCompiler(
                            cache=store,
                            executor=ClusterExecutor(
                                *server.address)).compile(jobs)),
                    daemon=True)
                runner.start()
                # Wait until the victim job is running on the first
                # worker (it wrote its marker), then kill that worker.
                deadline = time.monotonic() + 30.0
                while not marker.exists() \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert marker.exists(), "victim job never started"
                first.kill()
                first.wait(timeout=10.0)
                # A replacement worker finishes the batch (the victim
                # job runs fast the second time).
                second = spawn_worker(server.endpoint, "--max-jobs",
                                      str(len(jobs)))
                try:
                    runner.join(timeout=60.0)
                    assert not runner.is_alive(), "batch never finished"
                finally:
                    second.terminate()
                    second.wait(timeout=10.0)
            finally:
                first.kill()
            assert server.stats.requeued >= 1
        report = report_box[0]
        assert report.result("victim").value == 11
        assert [report.result(f"t{i}").value for i in range(3)] \
            == [0, 2, 4]
        # The summary matches a single-host run bit-for-bit.
        inline = BatchCompiler().compile(
            [SlowOnceJob(name="victim", marker=str(marker),
                         seconds=60.0, value=11),
             *[TinyJob(name=f"t{i}", value=i) for i in range(3)]])
        assert [(r.name, r.digest, r.value) for r in report.results] \
            == [(r.name, r.digest, r.value) for r in inline.results]


class TestStatisticalGridAcrossExecutors:
    """EXP-S1 bit-identity: inline vs local pool vs cluster."""

    CONFIG = quick_statistical_config()

    def summary_key(self, summary):
        return (summary.rows, summary.average_reduction_pct,
                summary.overall_reduction_pct)

    def test_summary_bit_identical_across_executors(self, tmp_path):
        inline = run_statistical_comparison(self.CONFIG)
        pooled = run_statistical_comparison(self.CONFIG, n_workers=2)
        with thread_fleet(n_workers=2) as server:
            clustered = run_statistical_comparison(
                self.CONFIG,
                executor=ClusterExecutor(*server.address))
            store = ShardedDirectoryCache(tmp_path / "grid")
            warmed = run_statistical_comparison(
                self.CONFIG, cache=store,
                executor=ClusterExecutor(*server.address))
            cached = run_statistical_comparison(
                self.CONFIG, cache=ShardedDirectoryCache(store.root),
                executor=ClusterExecutor(*server.address))
        assert self.summary_key(inline) == self.summary_key(pooled)
        assert self.summary_key(inline) == self.summary_key(clustered)
        assert self.summary_key(inline) == self.summary_key(warmed)
        assert self.summary_key(inline) == self.summary_key(cached)
        assert cached.n_points_compiled == 0
        assert cached.n_points_cached == len(inline.rows)

    def test_summary_bit_identical_after_worker_kill(self, tmp_path):
        """Kill one of two subprocess workers mid-run: the summary
        still matches the inline run bit-for-bit."""
        config = quick_statistical_config()
        inline = run_statistical_comparison(config)
        with JobServer(lease_timeout=120.0) as server:
            victim = spawn_worker(server.endpoint)
            survivor = spawn_worker(server.endpoint)
            killed = threading.Event()

            def kill_after_first(done, total, result):
                if done >= 1 and not killed.is_set():
                    killed.set()
                    victim.kill()

            try:
                clustered = run_statistical_comparison(
                    config,
                    executor=ClusterExecutor(*server.address),
                    progress=kill_after_first)
            finally:
                victim.kill()
                victim.wait(timeout=10.0)
                survivor.terminate()
                survivor.wait(timeout=10.0)
        assert killed.is_set()
        assert clustered.rows == inline.rows
        assert clustered.average_reduction_pct \
            == inline.average_reduction_pct
        assert clustered.overall_reduction_pct \
            == inline.overall_reduction_pct


class TestWorkerLoop:
    def test_max_jobs_and_return_count(self):
        with JobServer() as server:
            server.create_batch([encode_payload(TinyJob(name="a")),
                                 encode_payload(TinyJob(name="b",
                                                        value=2))])
            worker = Worker(*server.address, poll=0.05, max_jobs=2)
            assert worker.run() == 2
            assert server.stats.completed == 2

    def test_idle_exit(self):
        with JobServer() as server:
            worker = Worker(*server.address, poll=0.05, idle_exit=0.15)
            started = time.monotonic()
            assert worker.run() == 0
            assert time.monotonic() - started < 10.0

    def test_stop_is_graceful(self):
        with JobServer() as server:
            worker = Worker(*server.address, poll=0.05)
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            time.sleep(0.1)
            worker.stop()
            thread.join(timeout=10.0)
            assert not thread.is_alive()

    def test_connect_retry_gives_up_loudly(self):
        worker = Worker("127.0.0.1", unused_port(), poll=0.05,
                        connect_retry=0.2)
        with pytest.raises(BatchError, match="cannot reach job server"):
            worker.run()

    def test_validates_parameters(self):
        with pytest.raises(BatchError):
            Worker("h", 0)
        with pytest.raises(BatchError):
            Worker("h", 80, poll=5.0, timeout=5.0)


class TestWorkerCli:
    def test_worker_cli_lifecycle_over_a_subprocess(self):
        """`repro-agu worker` as deployed: serves a job, logs it, and
        SIGTERM exits gracefully with a summary line."""
        with JobServer() as server:
            server.create_batch(
                [encode_payload(TinyJob(name="cli-job", value=3))])
            process = spawn_worker(server.endpoint)
            try:
                deadline = time.monotonic() + 30.0
                while server.stats.completed < 1 \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert server.stats.completed == 1
            finally:
                process.send_signal(signal.SIGTERM)
                out, _err = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "[executed] cli-job" in out
        assert "worker stopped; 1 job(s) executed" in out

    def test_executor_and_workers_flags_are_exclusive(self, capsys):
        from repro.cli.main import main

        assert main(["stats", "--quick", "--executor", "inline",
                     "-j", "2"]) == 1
        err = capsys.readouterr().err
        assert "mutually exclusive" in err

    def test_stats_cli_through_executor_spec(self, capsys):
        """`--executor local:2` drives the same code path as a cluster
        spec, end to end through the CLI."""
        from repro.cli.main import main

        assert main(["stats", "--n", "10", "--m", "1", "--k", "2",
                     "--patterns", "2", "--repeats", "2",
                     "--executor", "local:2"]) == 0
        out = capsys.readouterr().out
        assert "1 grid point(s): 1 compiled" in out
        assert "on local:2" in out
