"""Tests of the distributed execution service (`repro.batch.cluster`)
and the engine's executor seam.

The contract under test: `BatchCompiler` behaves identically whatever
executes its cache misses -- inline, a local process pool, or a fleet
of workers leasing jobs from a `JobServer` -- including the failure
semantics (`BatchError` naming the job, completed work persisted
before the error propagates, resumable caches) and survival of worker
death mid-job (lease requeue, bit-identical results).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from _cluster_harness import (
    GateJob,
    VirtualClock,
    gate_events,
    reset_gate,
    scripted_cluster,
)
from _cluster_jobs import (
    CrashingJob,
    HugeResultJob,
    SlowOnceJob,
    TinyJob,
    TinyResult,
    thread_fleet,
)

import repro
from repro.agu.model import AguSpec
from repro.analysis.experiments import (
    quick_statistical_config,
    run_statistical_comparison,
)
from repro.batch.cache import ShardedDirectoryCache
from repro.batch.cluster import (
    ClusterExecutor,
    JobServer,
    Worker,
    cluster_executor_from_spec,
    decode_payload,
    encode_payload,
    parse_endpoint,
)
from repro.batch.digest import job_digest
from repro.batch.engine import (
    BatchCompiler,
    InlineExecutor,
    LocalPoolExecutor,
    open_executor,
)
from repro.batch.jobs import jobs_from_suite
from repro.errors import BatchError

SPEC = AguSpec(4, 1)


def suite_jobs(count: int = 6):
    return jobs_from_suite("full", SPEC, n_iterations=4)[:count]


def spawn_worker(endpoint: str, *extra: str) -> subprocess.Popen:
    """A real ``repro-agu worker`` subprocess that can unpickle both
    `repro.batch` jobs and this suite's `_cluster_jobs` helpers."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    tests_dir = str(Path(__file__).resolve().parent)
    extra_path = [env["PYTHONPATH"]] if env.get("PYTHONPATH") else []
    env["PYTHONPATH"] = os.pathsep.join([src, tests_dir] + extra_path)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli.main", "worker", endpoint,
         "--poll", "0.2", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)


def unused_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestSpecParsing:
    def test_open_executor_inline(self):
        assert isinstance(open_executor("inline"), InlineExecutor)

    def test_open_executor_local_pool(self):
        executor = open_executor("local:3")
        assert isinstance(executor, LocalPoolExecutor)
        assert executor.n_workers == 3

    def test_open_executor_local_defaults_to_cpu_count(self):
        executor = open_executor("local")
        assert executor.n_workers == (os.cpu_count() or 1)

    def test_open_executor_tcp(self):
        executor = open_executor("tcp://127.0.0.1:8742?timeout=7")
        assert isinstance(executor, ClusterExecutor)
        assert (executor.host, executor.port) == ("127.0.0.1", 8742)
        assert executor.timeout == 7.0

    def test_instances_pass_through(self):
        executor = InlineExecutor()
        assert open_executor(executor) is executor

    @pytest.mark.parametrize("spec", [
        "pool", "local:x", "local:0", "redis://h:1", "tcp://nope",
        "tcp://h:1/path", "tcp://127.0.0.1:1?bogus=1",
        "tcp://127.0.0.1:1?timeout=x",
    ])
    def test_bad_specs_fail_loudly(self, spec):
        with pytest.raises(BatchError):
            open_executor(spec)

    def test_parse_endpoint_options(self):
        host, port, options = parse_endpoint(
            "tcp://[::1]:9000?timeout=2.5", {"timeout": float})
        assert (host, port) == ("::1", 9000)
        assert options == {"timeout": 2.5}

    def test_parse_endpoint_is_the_shared_grammar(self):
        """Cache specs and executor specs parse through one function
        (see repro.batch.service.parse_endpoint)."""
        import repro.batch.service as service

        assert parse_endpoint is service.parse_endpoint
        with pytest.raises(BatchError, match="unknown option"):
            parse_endpoint("tcp://h:1?bogus=1", {"timeout": float})

    def test_cluster_executor_validates_port_and_timeout(self):
        with pytest.raises(BatchError):
            ClusterExecutor("h", 0)
        with pytest.raises(BatchError):
            ClusterExecutor("h", 80, timeout=0)

    def test_compiler_rejects_workers_plus_executor(self):
        with pytest.raises(BatchError):
            BatchCompiler(n_workers=2, executor="inline")

    def test_compiler_accepts_spec_strings(self):
        report = BatchCompiler(executor="inline").compile(suite_jobs(2))
        assert report.n_jobs == 2


class TestPayloadCodec:
    def test_round_trip(self):
        job = TinyJob(name="codec", value=21)
        assert decode_payload(encode_payload(job)) == job


class TestProtocol:
    """Direct `handle_worker_request` coverage (no sockets)."""

    def test_ping_and_unknown_op(self):
        server = JobServer()
        try:
            assert server.handle_worker_request(
                {"op": "ping"}, owner=object())["ok"]
            response = server.handle_worker_request(
                {"op": "nope"}, owner=object())
            assert not response["ok"] and "unknown op" in response["error"]
        finally:
            server.shutdown()

    def test_lease_idle_complete_flow(self):
        server = JobServer()
        try:
            owner = object()
            assert server.handle_worker_request(
                {"op": "lease", "wait": 0}, owner)["idle"]
            job = TinyJob(name="flow", value=3)
            batch = server.create_batch([encode_payload(job)])
            leased = server.handle_worker_request(
                {"op": "lease", "wait": 0}, owner)
            assert leased["index"] == 0
            assert decode_payload(leased["job"]) == job
            result = decode_payload(leased["job"]).execute()
            done = server.handle_worker_request(
                {"op": "complete", "lease": leased["lease"],
                 "result": encode_payload(result)}, owner)
            assert done == {"ok": True}
            event = batch.events.get(timeout=1.0)
            assert event["event"] == "result" and event["index"] == 0
            assert batch.events.get(timeout=1.0)["event"] == "done"
            assert server.stats.completed == 1
        finally:
            server.shutdown()

    def test_stale_lease_is_acknowledged_but_ignored(self):
        server = JobServer()
        try:
            response = server.handle_worker_request(
                {"op": "complete", "lease": "l999", "result":
                 encode_payload(TinyResult("x", "d", 1))}, object())
            assert response == {"ok": True, "stale": True}
        finally:
            server.shutdown()

    def test_malformed_ops_answer_errors(self):
        server = JobServer()
        try:
            for bad in ({"op": "lease", "wait": -1},
                        {"op": "complete", "lease": 3, "result": "x"},
                        {"op": "fail"}):
                assert not server.handle_worker_request(bad, object())["ok"]
        finally:
            server.shutdown()

    def test_status_counts_queue_and_workers(self):
        with thread_fleet(n_workers=2) as server:
            deadline = time.monotonic() + 5.0
            while server.n_connected_workers < 2 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            status = server.handle_worker_request(
                {"op": "status"}, object())
            assert status["ok"] and status["workers"] == 2
            assert status["queued"] == 0 and status["batches"] == 0

    def test_rejects_invalid_server_parameters(self):
        with pytest.raises(BatchError):
            JobServer(lease_timeout=0)
        with pytest.raises(BatchError):
            JobServer(max_attempts=0)
        with pytest.raises(BatchError):
            JobServer(idle_timeout=0)

    def test_idle_connection_is_closed_after_the_timeout(self):
        """A connection that never speaks (a stalled or half-open
        peer) is dropped after idle_timeout instead of pinning its
        handler thread for the life of the server."""
        with thread_fleet(n_workers=1, idle_timeout=0.2) as server:
            with socket.create_connection(server.address,
                                          timeout=5) as sock:
                sock.settimeout(5.0)
                assert sock.recv(1) == b""  # server-side close
            # Healthy workers poll well inside the timeout: the fleet
            # still executes batches while stalled peers are dropped.
            report = BatchCompiler(
                executor=ClusterExecutor(*server.address)).compile(
                [TinyJob("idle-check", 1)])
            assert report.n_jobs == 1


class TestClusterExecution:
    """End-to-end through the engine, thread-fleet topology."""

    def test_suite_matches_inline_bit_for_bit(self):
        jobs = suite_jobs(6)
        inline = BatchCompiler().compile(jobs)
        with thread_fleet(n_workers=2) as server:
            clustered = BatchCompiler(
                executor=ClusterExecutor(*server.address)).compile(jobs)
            assert server.stats.completed == len(jobs)
        assert [(r.name, r.digest, r.total_cost, r.k_tilde,
                 r.overhead_per_iteration)
                for r in clustered.results] \
            == [(r.name, r.digest, r.total_cost, r.k_tilde,
                 r.overhead_per_iteration)
                for r in inline.results]

    def test_streaming_persists_every_point(self, tmp_path):
        jobs = suite_jobs(5)
        store = ShardedDirectoryCache(tmp_path / "store")
        with thread_fleet(n_workers=2) as server:
            compiler = BatchCompiler(
                cache=store, executor=ClusterExecutor(*server.address))
            delivered = dict(compiler.as_completed(jobs))
        assert sorted(delivered) == list(range(len(jobs)))
        assert len(store) == len(jobs)
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(jobs)
        assert resumed.n_cache_hits == len(jobs)

    def test_duplicate_digests_compute_once(self):
        job = TinyJob(name="dup", value=5)
        twin = TinyJob(name="dup-twin", value=5)
        with thread_fleet(n_workers=2) as server:
            compiler = BatchCompiler(
                executor=ClusterExecutor(*server.address))
            results = [result for _, result
                       in compiler.as_completed([job, twin])]
            assert server.stats.completed == 1
        assert {result.name for result in results} \
            == {"dup", "dup-twin"}
        assert sum(result.from_cache for result in results) == 1

    def test_heartbeats_keep_slow_jobs_alive(self, tmp_path):
        """A job slower than the client's frame timeout must not trip
        the went-silent detection: heartbeats flow while it runs."""
        marker = tmp_path / "never-used"
        marker.write_text("skip the sleep? no: sleep every time")
        slow = SlowOnceJob(name="slowish", marker=str(tmp_path / "m"),
                           seconds=1.2)
        with thread_fleet(n_workers=1, heartbeat=0.1) as server:
            executor = ClusterExecutor(*server.address, timeout=0.6)
            report = BatchCompiler(executor=executor).compile([slow])
        assert report.results[0].value == 7

    def test_dead_server_fails_the_batch_loudly(self):
        executor = ClusterExecutor("127.0.0.1", unused_port(),
                                   timeout=0.5)
        with pytest.raises(BatchError, match="cannot reach job server"):
            BatchCompiler(executor=executor).compile(suite_jobs(2))

    def test_server_shutdown_mid_batch_fails_loudly(self, tmp_path):
        server = JobServer()
        server.start()
        executor = ClusterExecutor(*server.address, timeout=0.5)
        stream = BatchCompiler(executor=executor).as_completed(
            [TinyJob(name="stranded")])
        server.shutdown()
        with pytest.raises(BatchError):
            list(stream)

    def test_abandoned_stream_cancels_queued_jobs(self, tmp_path):
        """Breaking out of as_completed cancels the batch: queued jobs
        drop server-side and the server stays serviceable."""
        store = ShardedDirectoryCache(tmp_path / "store")
        slow_jobs = [SlowOnceJob(name=f"s{i}",
                                 marker=str(tmp_path / f"m{i}"),
                                 seconds=0.3, value=i)
                     for i in range(6)]
        with thread_fleet(n_workers=1) as server:
            compiler = BatchCompiler(
                cache=store, executor=ClusterExecutor(*server.address))
            for _index, _result in compiler.as_completed(slow_jobs):
                break  # abandon after the first delivery
            assert server.stats.dropped >= 1
            # The server still serves new batches afterwards.
            report = BatchCompiler(
                executor=ClusterExecutor(*server.address)).compile(
                    [TinyJob(name="after", value=1)])
            assert report.results[0].value == 2
        # Everything delivered or drained was persisted.
        assert len(store) >= 1


class TestClusterFailureSemantics:
    """The engine's failure contract, served by remote workers."""

    def test_crash_names_job_and_digest_and_resumes(self, tmp_path):
        survivors = suite_jobs(4)
        jobs = [*survivors, CrashingJob(name="poison")]
        store = ShardedDirectoryCache(tmp_path / "store")
        with thread_fleet(n_workers=2) as server:
            compiler = BatchCompiler(
                cache=store, executor=ClusterExecutor(*server.address))
            with pytest.raises(BatchError) as caught:
                for _ in compiler.as_completed(jobs):
                    pass
            assert server.stats.failed == 1
        assert caught.value.job_name == "poison"
        assert caught.value.digest == job_digest(CrashingJob("poison"))
        assert "injected crash" in str(caught.value)
        assert "RuntimeError" in str(caught.value)
        # Completed survivors persisted; the re-run resumes.
        assert len(store) >= 1
        fresh = BatchCompiler().compile(survivors)
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(survivors)
        assert resumed.n_cache_hits == len(store)
        assert [(r.name, r.total_cost) for r in resumed.results] \
            == [(r.name, r.total_cost) for r in fresh.results]

    def test_compile_path_names_the_failing_job(self):
        with thread_fleet(n_workers=2) as server:
            with pytest.raises(BatchError) as caught:
                BatchCompiler(
                    executor=ClusterExecutor(*server.address)).compile(
                        [*suite_jobs(2), CrashingJob(name="poison")])
        assert caught.value.job_name == "poison"
        assert caught.value.digest is not None

    def test_job_failures_are_never_requeued(self):
        """A deterministic crash reaches the client once; the server
        does not burn further leases on it."""
        with thread_fleet(n_workers=2) as server:
            with pytest.raises(BatchError):
                BatchCompiler(
                    executor=ClusterExecutor(*server.address)).compile(
                        [CrashingJob(name="poison")])
            assert server.stats.failed == 1
            assert server.stats.requeued == 0

    def test_oversized_result_fails_the_job_not_the_worker(
            self, monkeypatch):
        """A result that cannot fit one protocol frame is reported as
        that job's failure; the worker survives to serve the next
        batch instead of cascading the fleet down."""
        import repro.batch.service as service

        monkeypatch.setattr(service, "MAX_FRAME_BYTES", 4096)
        with thread_fleet(n_workers=1) as server:
            executor = ClusterExecutor(*server.address)
            with pytest.raises(BatchError) as caught:
                BatchCompiler(executor=executor).compile(
                    [HugeResultJob(name="blob")])
            assert caught.value.job_name == "blob"
            assert "result too large" in str(caught.value)
            report = BatchCompiler(executor=executor).compile(
                [TinyJob(name="next", value=9)])
            assert report.results[0].value == 18
            assert server.stats.failed == 1
            assert server.stats.completed == 1

    def test_zero_worker_submit_warns_instead_of_silence(self, caplog):
        """Submitting to an empty fleet logs a loud hint (the batch
        legitimately waits for workers to join)."""
        import logging

        with JobServer() as server:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.batch.cluster"):
                stream = ClusterExecutor(*server.address).run(
                    [TinyJob(name="waiting")])
            assert "no connected workers" in caplog.text
            assert stream.shutdown() == {}
            assert server.stats.dropped == 1


class TestLeaseRecovery:
    def test_expired_lease_is_requeued_and_completed(self):
        """A worker that leases a job and goes silent loses it to the
        reaper; the job completes on a live worker.  Deterministic:
        the stall is a virtual-clock advance, not a sleep."""
        with scripted_cluster(lease_timeout=0.2) as cluster:
            silent, live = cluster.worker(), cluster.worker()
            batch = cluster.submit([TinyJob(name="lost", value=4)])
            leased = silent.lease()
            assert leased["index"] == 0
            cluster.clock.advance(0.25)  # the stall fault
            assert cluster.server.reap_expired_leases() == 1
            assert cluster.server.stats.requeued == 1
            # A live worker now gets the requeued job...
            released = live.lease()
            assert released["index"] == 0
            result = decode_payload(released["job"]).execute()
            assert live.complete(released, result) == {"ok": True}
            # ...and the silent worker's late completion is stale.
            assert silent.complete(leased, result) \
                == {"ok": True, "stale": True}
            events = cluster.drain_events(batch)
            assert [event["event"] for event in events] \
                == ["result", "done"]
            assert cluster.server.stats.completed == 1
            assert cluster.server.stats.stale == 1

    def test_gives_up_after_max_attempts(self):
        """A job that loses every worker it touches eventually fails
        the batch instead of looping forever.  The fault is a worker
        SIGKILL (connection loss) injected via the harness."""
        with scripted_cluster(lease_timeout=60.0,
                              max_attempts=2) as cluster:
            batch = cluster.submit([TinyJob(name="doomed")])
            for _attempt in range(2):
                doomed = cluster.worker()
                assert doomed.lease() is not None
                doomed.kill()  # SIGKILL: leases requeue on disconnect
            events = cluster.drain_events(batch)
            assert [event["event"] for event in events] \
                == ["failed", "aborted"]
            assert events[0]["error_type"] == "WorkerLost"
            assert cluster.server.stats.requeued == 1

    def test_duplicate_completion_is_first_wins(self):
        """Two completions on one lease: the first is accepted, the
        duplicate is acknowledged stale, and the client sees exactly
        one result event."""
        with scripted_cluster() as cluster:
            worker = cluster.worker()
            batch = cluster.submit([TinyJob(name="twice", value=3)])
            leased = worker.lease()
            result = decode_payload(leased["job"]).execute()
            assert worker.complete(leased, result) == {"ok": True}
            assert worker.complete(leased, result) \
                == {"ok": True, "stale": True}
            events = cluster.drain_events(batch)
            assert [event["event"] for event in events] \
                == ["result", "done"]
            assert cluster.server.stats.completed == 1
            assert cluster.server.stats.stale == 1

    def test_worker_killed_mid_job_requeues_and_completes(
            self, tmp_path):
        """The headline recovery scenario: SIGKILL a worker process
        mid-job; the lease requeues on connection loss and the job
        completes on another worker, bit-identical to a clean run."""
        marker = tmp_path / "leased-once"
        jobs = [SlowOnceJob(name="victim", marker=str(marker),
                            seconds=60.0, value=11),
                *[TinyJob(name=f"t{i}", value=i) for i in range(3)]]
        store = ShardedDirectoryCache(tmp_path / "store")
        with JobServer(lease_timeout=120.0) as server:
            first = spawn_worker(server.endpoint)
            try:
                report_box: list = []
                runner = threading.Thread(
                    target=lambda: report_box.append(
                        BatchCompiler(
                            cache=store,
                            executor=ClusterExecutor(
                                *server.address)).compile(jobs)),
                    daemon=True)
                runner.start()
                # Wait until the victim job is running on the first
                # worker (it wrote its marker), then kill that worker.
                deadline = time.monotonic() + 30.0
                while not marker.exists() \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert marker.exists(), "victim job never started"
                first.kill()
                first.wait(timeout=10.0)
                # A replacement worker finishes the batch (the victim
                # job runs fast the second time).
                second = spawn_worker(server.endpoint, "--max-jobs",
                                      str(len(jobs)))
                try:
                    runner.join(timeout=60.0)
                    assert not runner.is_alive(), "batch never finished"
                finally:
                    second.terminate()
                    second.wait(timeout=10.0)
            finally:
                first.kill()
            assert server.stats.requeued >= 1
        report = report_box[0]
        assert report.result("victim").value == 11
        assert [report.result(f"t{i}").value for i in range(3)] \
            == [0, 2, 4]
        # The summary matches a single-host run bit-for-bit.
        inline = BatchCompiler().compile(
            [SlowOnceJob(name="victim", marker=str(marker),
                         seconds=60.0, value=11),
             *[TinyJob(name=f"t{i}", value=i) for i in range(3)]])
        assert [(r.name, r.digest, r.value) for r in report.results] \
            == [(r.name, r.digest, r.value) for r in inline.results]


class TestSchedulingPolicies:
    """The trace-informed scheduling policies, deterministically (all
    off by default; every test opts in explicitly)."""

    def test_fifo_is_the_default_and_ignores_hints(self):
        with scripted_cluster() as cluster:
            hints = [{"name": f"j{i}", "size": float(10 - i)}
                     for i in range(3)]
            cluster.submit([TinyJob(name=f"j{i}", value=i)
                            for i in range(3)], hints=hints)
            worker = cluster.worker()
            assert [worker.lease()["index"] for _ in range(3)] \
                == [0, 1, 2]

    def test_size_order_leases_largest_hinted_first(self):
        """order="size": hinted jobs go largest-first; unhinted jobs
        keep FIFO order after every hinted one."""
        with scripted_cluster(order="size") as cluster:
            hints = [{"name": "j0", "size": 1.0},
                     {"name": "j1", "size": 5.0},
                     {"name": "j2", "size": 3.0},
                     {"name": "j3"}]
            cluster.submit([TinyJob(name=f"j{i}", value=i)
                            for i in range(4)], hints=hints)
            worker = cluster.worker()
            assert [worker.lease()["index"] for _ in range(4)] \
                == [1, 2, 0, 3]

    def test_size_order_survives_malformed_hints(self):
        """Hints are advisory: garbage falls back to FIFO instead of
        failing the batch."""
        with scripted_cluster(order="size") as cluster:
            cluster.submit([TinyJob(name=f"j{i}", value=i)
                            for i in range(2)],
                           hints=[{"size": "huge"}, "nonsense"])
            worker = cluster.worker()
            assert [worker.lease()["index"] for _ in range(2)] \
                == [0, 1]

    def test_adaptive_lease_timeout_follows_observed_durations(self):
        """The effective timeout stays static until enough samples
        exist, then tracks factor x p95 of observed durations -- and
        the reaper enforces the adaptive value."""
        with scripted_cluster(lease_timeout=60.0, adaptive_lease=True,
                              adaptive_min_samples=2,
                              adaptive_factor=3.0,
                              adaptive_floor=0.5) as cluster:
            server = cluster.server
            assert server.effective_lease_timeout() == 60.0
            worker = cluster.worker()
            cluster.submit([TinyJob(name=f"j{i}", value=i)
                            for i in range(2)])
            for _ in range(2):
                leased = worker.lease()
                worker.complete(
                    leased, decode_payload(leased["job"]).execute(),
                    seconds=1.0)
            assert server.effective_lease_timeout() \
                == pytest.approx(3.0)
            # A lease older than the adaptive timeout (but far younger
            # than the static one) is reaped.
            cluster.submit([TinyJob(name="late", value=9)])
            assert worker.lease() is not None
            cluster.clock.advance(3.5)
            assert server.reap_expired_leases() == 1

    def test_adaptive_lease_timeout_respects_the_floor(self):
        """Sub-floor job durations cannot shrink the timeout into
        hair-trigger territory."""
        with scripted_cluster(lease_timeout=60.0, adaptive_lease=True,
                              adaptive_min_samples=1,
                              adaptive_factor=3.0,
                              adaptive_floor=0.5) as cluster:
            worker = cluster.worker()
            cluster.submit([TinyJob(name="quick", value=1)])
            leased = worker.lease()
            worker.complete(
                leased, decode_payload(leased["job"]).execute(),
                seconds=0.001)
            assert cluster.server.effective_lease_timeout() == 0.5

    def test_speculative_re_lease_first_wins(self):
        """The headline speculation scenario: a straggling lease gets
        a duplicate once the queue drains; the duplicate's result is
        accepted, the straggler's late result is acknowledged stale,
        and the client sees each index exactly once."""
        with scripted_cluster(lease_timeout=60.0, speculate=True,
                              speculate_min_samples=1,
                              speculate_factor=2.0) as cluster:
            fast, slow, helper = (cluster.worker(), cluster.worker(),
                                  cluster.worker())
            batch = cluster.submit([TinyJob(name="quick", value=1),
                                    TinyJob(name="drag", value=2)])
            quick_lease = fast.lease()
            drag_lease = slow.lease()
            assert (quick_lease["index"], drag_lease["index"]) == (0, 1)
            result0 = decode_payload(quick_lease["job"]).execute()
            assert fast.complete(quick_lease, result0, seconds=0.05) \
                == {"ok": True}
            # Queue drained, one sample (p95 = 0.05 s): a lease older
            # than 0.1 s is a straggler.
            cluster.clock.advance(1.0)
            assert cluster.server.run_policies() \
                == {"reaped": 0, "speculated": 1}
            # At most one live duplicate per job: a second sweep adds
            # nothing.
            assert cluster.server.speculate_stragglers() == 0
            duplicate = helper.lease()
            assert duplicate["index"] == 1
            result1 = decode_payload(duplicate["job"]).execute()
            assert helper.complete(duplicate, result1, seconds=0.05) \
                == {"ok": True}
            # The straggler finally reports: first result won.
            assert slow.complete(drag_lease, result1) \
                == {"ok": True, "stale": True}
            events = cluster.drain_events(batch)
            assert [event["event"] for event in events] \
                == ["result", "result", "done"]
            assert sorted(event["index"] for event in events[:2]) \
                == [0, 1]
            stats = cluster.server.stats
            assert (stats.completed, stats.speculated, stats.stale,
                    stats.requeued) == (2, 1, 1, 0)

    def test_speculation_waits_for_samples_and_an_idle_queue(self):
        """No duplicates before ``speculate_min_samples`` completions,
        and none while ready work remains for idle workers."""
        with scripted_cluster(lease_timeout=60.0, speculate=True,
                              speculate_min_samples=2,
                              speculate_factor=2.0) as cluster:
            worker = cluster.worker()
            cluster.submit([TinyJob(name=f"j{i}", value=i)
                            for i in range(3)])
            leased = worker.lease()
            cluster.clock.advance(100.0)
            # Ready work remains: never speculate.
            assert cluster.server.speculate_stragglers() == 0
            worker.complete(
                leased, decode_payload(leased["job"]).execute(),
                seconds=0.05)
            assert worker.lease() is not None
            assert worker.lease() is not None
            cluster.clock.advance(100.0)
            # Queue drained but only one sample (< min_samples).
            assert cluster.server.speculate_stragglers() == 0

    def test_speculation_after_resolve_never_reruns_the_job(self):
        """A duplicate still queued when the original lease completes
        must not be leased afterwards (the resolved index leaves the
        ready queue)."""
        with scripted_cluster(lease_timeout=60.0, speculate=True,
                              speculate_min_samples=1,
                              speculate_factor=2.0) as cluster:
            worker, helper = cluster.worker(), cluster.worker()
            cluster.submit([TinyJob(name="quick", value=1),
                            TinyJob(name="drag", value=2)])
            quick_lease = worker.lease()
            drag_lease = worker.lease()
            worker.complete(
                quick_lease,
                decode_payload(quick_lease["job"]).execute(),
                seconds=0.05)
            cluster.clock.advance(1.0)
            assert cluster.server.speculate_stragglers() == 1
            # The original finishes before anyone leases the duplicate.
            assert worker.complete(
                drag_lease,
                decode_payload(drag_lease["job"]).execute()) \
                == {"ok": True}
            assert helper.lease() is None
            assert cluster.server.stats.completed == 2


class TestStatisticalGridAcrossExecutors:
    """EXP-S1 bit-identity: inline vs local pool vs cluster."""

    CONFIG = quick_statistical_config()

    def summary_key(self, summary):
        return (summary.rows, summary.average_reduction_pct,
                summary.overall_reduction_pct)

    def test_summary_bit_identical_across_executors(self, tmp_path):
        inline = run_statistical_comparison(self.CONFIG)
        pooled = run_statistical_comparison(self.CONFIG, n_workers=2)
        with thread_fleet(n_workers=2) as server:
            clustered = run_statistical_comparison(
                self.CONFIG,
                executor=ClusterExecutor(*server.address))
            store = ShardedDirectoryCache(tmp_path / "grid")
            warmed = run_statistical_comparison(
                self.CONFIG, cache=store,
                executor=ClusterExecutor(*server.address))
            cached = run_statistical_comparison(
                self.CONFIG, cache=ShardedDirectoryCache(store.root),
                executor=ClusterExecutor(*server.address))
        assert self.summary_key(inline) == self.summary_key(pooled)
        assert self.summary_key(inline) == self.summary_key(clustered)
        assert self.summary_key(inline) == self.summary_key(warmed)
        assert self.summary_key(inline) == self.summary_key(cached)
        assert cached.n_points_compiled == 0
        assert cached.n_points_cached == len(inline.rows)

    def test_summary_bit_identical_with_policies_enabled(self):
        """Regression for speculative re-lease first-wins semantics:
        with every scheduling policy on and speculation tuned to fire
        on essentially any in-flight lease, duplicate completions are
        resolved first-wins and the summary stays bit-identical to
        the inline run."""
        inline = run_statistical_comparison(self.CONFIG)
        with thread_fleet(n_workers=2, order="size", speculate=True,
                          speculate_min_samples=1,
                          speculate_factor=0.01,
                          adaptive_lease=True, adaptive_min_samples=1,
                          lease_timeout=2.0,
                          max_attempts=5) as server:
            clustered = run_statistical_comparison(
                self.CONFIG,
                executor=ClusterExecutor(*server.address))
            stats = server.stats
        assert self.summary_key(inline) == self.summary_key(clustered)
        # Every job resolved exactly once client-side, whatever the
        # duplicate-lease churn server-side.
        assert stats.completed == len(inline.rows)

    def test_summary_bit_identical_after_worker_kill(self, tmp_path):
        """Kill one of two subprocess workers mid-run: the summary
        still matches the inline run bit-for-bit."""
        config = quick_statistical_config()
        inline = run_statistical_comparison(config)
        with JobServer(lease_timeout=120.0) as server:
            victim = spawn_worker(server.endpoint)
            survivor = spawn_worker(server.endpoint)
            killed = threading.Event()

            def kill_after_first(done, total, result):
                if done >= 1 and not killed.is_set():
                    killed.set()
                    victim.kill()

            try:
                clustered = run_statistical_comparison(
                    config,
                    executor=ClusterExecutor(*server.address),
                    progress=kill_after_first)
            finally:
                victim.kill()
                victim.wait(timeout=10.0)
                survivor.terminate()
                survivor.wait(timeout=10.0)
        assert killed.is_set()
        assert clustered.rows == inline.rows
        assert clustered.average_reduction_pct \
            == inline.average_reduction_pct
        assert clustered.overall_reduction_pct \
            == inline.overall_reduction_pct


class TestWorkerLoop:
    def test_max_jobs_and_return_count(self):
        with JobServer() as server:
            server.create_batch([encode_payload(TinyJob(name="a")),
                                 encode_payload(TinyJob(name="b",
                                                        value=2))])
            worker = Worker(*server.address, poll=0.05, max_jobs=2)
            assert worker.run() == 2
            assert server.stats.completed == 2

    def test_idle_exit(self):
        """The idle clock runs on the worker's injected clock: each
        idle poll advances virtual time by the whole budget, so the
        loop exits on its second poll with no real waiting."""
        clock = VirtualClock()

        def on_event(kind: str, detail: str) -> None:
            if kind == "idle":
                clock.advance(30.0)

        with JobServer() as server:
            worker = Worker(*server.address, poll=0.01, idle_exit=30.0,
                            on_event=on_event, clock=clock)
            assert worker.run() == 0

    def test_stop_is_graceful(self):
        """stop() exits the loop after the in-flight job: the worker
        is held inside execute() on a gate (no sleeps), stopped, then
        released."""
        reset_gate("stop-gate")
        entered, release = gate_events("stop-gate")
        try:
            with JobServer() as server:
                server.create_batch([encode_payload(
                    GateJob(name="held", gate="stop-gate"))])
                worker = Worker(*server.address, poll=0.05)
                thread = threading.Thread(target=worker.run,
                                          daemon=True)
                thread.start()
                assert entered.wait(timeout=10.0), \
                    "worker never started the job"
                worker.stop()  # requested while the job is in flight
                release.set()
                thread.join(timeout=10.0)
                assert not thread.is_alive()
                # The in-flight job still completed before the exit.
                assert server.stats.completed == 1
                assert worker.jobs_executed == 1
        finally:
            reset_gate("stop-gate")

    def test_stale_outcome_does_not_consume_max_jobs(self):
        """Regression: a worker racing a concurrent lease expiry used
        to count its stale outcome toward ``--max-jobs`` (and so could
        exit early, stranding the batch).  Only accepted outcomes
        consume slots; the stale one lands in ``jobs_stale``."""
        reset_gate("maxjobs-gate")
        entered, release = gate_events("maxjobs-gate")
        clock = VirtualClock()
        job = GateJob(name="g", gate="maxjobs-gate", value=7)
        try:
            with JobServer(clock=clock, auto_reap=False,
                           lease_timeout=0.2) as server:
                server.create_batch([encode_payload(job)])
                worker = Worker(*server.address, poll=0.0, max_jobs=2)
                thread = threading.Thread(target=worker.run,
                                          daemon=True)
                thread.start()
                assert entered.wait(timeout=10.0), \
                    "worker never started the job"
                # The lease expires mid-execution (virtual stall) and
                # a rival completes the job first.
                clock.advance(0.25)
                assert server.reap_expired_leases() == 1
                rival = object()
                released = server.handle_worker_request(
                    {"op": "lease", "wait": 0}, rival)
                result = TinyResult(name="g", digest=job_digest(job),
                                    value=7)
                assert server.handle_worker_request(
                    {"op": "complete", "lease": released["lease"],
                     "result": encode_payload(result)},
                    rival) == {"ok": True}
                # Queue follow-up work *before* releasing the gate so
                # the worker never blocks on an empty queue under the
                # virtual clock.
                server.create_batch(
                    [encode_payload(TinyJob(name="second", value=1)),
                     encode_payload(TinyJob(name="third", value=2))])
                release.set()
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "worker never exited"
                # The stale outcome did not burn a slot: both real
                # jobs were still executed by this worker.
                assert worker.jobs_executed == 2
                assert worker.jobs_stale == 1
                assert server.stats.stale == 1
                assert server.stats.completed == 3
        finally:
            reset_gate("maxjobs-gate")

    def test_stale_outcome_does_not_reset_the_idle_clock(self):
        """Regression companion: only accepted outcomes reset the
        ``--idle-exit`` clock.  A worker whose single outcome was
        stale exits on its standing idle budget -- one post-stale
        idle advance suffices -- instead of earning a fresh one."""
        reset_gate("idle-gate")
        entered, release = gate_events("idle-gate")
        clock = VirtualClock()
        advances: list[float] = []
        grant = threading.Event()  # test -> worker: advance next idle
        job = GateJob(name="g", gate="idle-gate", value=7)

        def on_event(kind: str, detail: str) -> None:
            if kind == "idle" and grant.is_set():
                grant.clear()
                advances.append(clock.advance(60.0))

        try:
            with JobServer(clock=clock, auto_reap=False,
                           lease_timeout=0.2) as server:
                worker = Worker(*server.address, poll=0.0,
                                idle_exit=50.0, on_event=on_event,
                                clock=clock)
                grant.set()  # idle poll #1 starts the idle clock
                thread = threading.Thread(target=worker.run,
                                          daemon=True)
                thread.start()
                deadline = time.monotonic() + 10.0
                while not advances and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert advances, "worker never reported idle"
                server.create_batch([encode_payload(job)])
                assert entered.wait(timeout=10.0), \
                    "worker never started the job"
                clock.advance(0.25)  # the lease expires mid-execution
                assert server.reap_expired_leases() == 1
                rival = object()
                released = server.handle_worker_request(
                    {"op": "lease", "wait": 0}, rival)
                result = TinyResult(name="g", digest=job_digest(job),
                                    value=7)
                server.handle_worker_request(
                    {"op": "complete", "lease": released["lease"],
                     "result": encode_payload(result)}, rival)
                release.set()  # the worker's outcome arrives stale
                deadline = time.monotonic() + 10.0
                while worker.jobs_stale < 1 \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert worker.jobs_stale == 1
                # One more idle advance pushes the *original* idle
                # clock past the budget; had the stale outcome reset
                # it, this single advance could not trigger the exit.
                grant.set()
                thread.join(timeout=10.0)
                assert not thread.is_alive(), "worker never exited"
                assert len(advances) == 2
                assert worker.jobs_executed == 0
        finally:
            reset_gate("idle-gate")

    def test_connect_retry_gives_up_loudly(self):
        worker = Worker("127.0.0.1", unused_port(), poll=0.05,
                        connect_retry=0.2)
        with pytest.raises(BatchError, match="cannot reach job server"):
            worker.run()

    def test_validates_parameters(self):
        with pytest.raises(BatchError):
            Worker("h", 0)
        with pytest.raises(BatchError):
            Worker("h", 80, poll=5.0, timeout=5.0)


class TestWorkerCli:
    def test_worker_cli_lifecycle_over_a_subprocess(self):
        """`repro-agu worker` as deployed: serves a job, logs it, and
        SIGTERM exits gracefully with a summary line."""
        with JobServer() as server:
            server.create_batch(
                [encode_payload(TinyJob(name="cli-job", value=3))])
            process = spawn_worker(server.endpoint)
            try:
                deadline = time.monotonic() + 30.0
                while server.stats.completed < 1 \
                        and time.monotonic() < deadline:
                    time.sleep(0.05)
                assert server.stats.completed == 1
            finally:
                process.send_signal(signal.SIGTERM)
                out, _err = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "[executed] cli-job" in out
        assert "worker stopped; 1 job(s) executed" in out

    def test_executor_and_workers_flags_are_exclusive(self, capsys):
        from repro.cli.main import main

        assert main(["stats", "--quick", "--executor", "inline",
                     "-j", "2"]) == 1
        err = capsys.readouterr().err
        assert "mutually exclusive" in err

    def test_stats_cli_through_executor_spec(self, capsys):
        """`--executor local:2` drives the same code path as a cluster
        spec, end to end through the CLI."""
        from repro.cli.main import main

        assert main(["stats", "--n", "10", "--m", "1", "--k", "2",
                     "--patterns", "2", "--repeats", "2",
                     "--executor", "local:2"]) == 0
        out = capsys.readouterr().out
        assert "1 grid point(s): 1 compiled" in out
        assert "on local:2" in out
