"""Unit tests for the array-layout extension."""

import pytest

from repro.agu.codegen import generate_address_code
from repro.agu.isa import PointTo
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.arraylayout.distance import (
    concrete_intra_distance,
    concrete_wrap_distance,
    layout_cover_cost,
)
from repro.arraylayout.optimize import optimize_layout
from repro.core.allocator import AddressRegisterAllocator
from repro.core.pipeline import compile_kernel
from repro.errors import LayoutError
from repro.ir.builder import LoopBuilder
from repro.ir.expr import AffineExpr
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayAccess, ArrayDecl
from repro.merging.cost import cover_cost
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)


def acc(array, coeff, offset):
    return ArrayAccess(array, AffineExpr(coeff, offset))


@pytest.fixture
def two_arrays_layout():
    return MemoryLayout.explicit(
        {"x": 0, "y": 10},
        [ArrayDecl("x", length=8), ArrayDecl("y", length=8)])


class TestConcreteDistances:
    def test_cross_array_becomes_constant(self, two_arrays_layout):
        distance = concrete_intra_distance(acc("x", 1, 2), acc("y", 1, 0),
                                           two_arrays_layout)
        assert distance == 10 - 2

    def test_same_array_matches_symbolic(self, two_arrays_layout):
        from repro.graph.distance import intra_distance
        a, b = acc("x", 1, 1), acc("x", 1, -2)
        assert concrete_intra_distance(a, b, two_arrays_layout) == \
            intra_distance(a, b)

    def test_different_coefficients_still_none(self, two_arrays_layout):
        assert concrete_intra_distance(acc("x", 1, 0), acc("y", 2, 0),
                                       two_arrays_layout) is None

    def test_wrap_includes_step(self, two_arrays_layout):
        distance = concrete_wrap_distance(acc("y", 1, 0), acc("x", 1, 3),
                                          step=2,
                                          layout=two_arrays_layout)
        assert distance == (0 + 2 + 3) - (10 + 0)


class TestOptimizeLayout:
    def _tail_head_kernel(self):
        return (LoopBuilder("tailhead", n_iterations=16)
                .array("x", length=4).array("y", length=64)
                .read("x", 3).write("y", 0).build())

    def test_tail_head_becomes_free(self):
        kernel = self._tail_head_kernel()
        allocation = AddressRegisterAllocator(AguSpec(1, 1)) \
            .allocate(kernel.pattern)
        plan = optimize_layout(kernel.pattern, allocation.cover,
                               kernel.arrays, modify_range=1)
        assert plan.baseline_cost == 2
        assert plan.cost == 0
        assert plan.savings == 2
        # y must sit immediately after x for the walk-across.
        assert plan.layout.base("y") == plan.layout.base("x") + 4

    def test_never_worse_than_reference(self):
        patterns = generate_batch(
            RandomPatternConfig(12, offset_span=5, n_arrays=3), 10,
            seed=77)
        allocator = AddressRegisterAllocator(AguSpec(2, 1))
        for pattern in patterns:
            allocation = allocator.allocate(pattern)
            decls = [ArrayDecl(name, length=8)
                     for name in pattern.arrays()]
            plan = optimize_layout(pattern, allocation.cover, decls, 1)
            assert plan.cost <= plan.baseline_cost

    def test_layouts_never_overlap(self):
        patterns = generate_batch(
            RandomPatternConfig(10, offset_span=5, n_arrays=3), 8,
            seed=13)
        allocator = AddressRegisterAllocator(AguSpec(1, 1))
        for pattern in patterns:
            allocation = allocator.allocate(pattern)
            decls = [ArrayDecl(name, length=6)
                     for name in pattern.arrays()]
            # MemoryLayout.explicit raises on overlap; constructing the
            # plan at all is the assertion.
            plan = optimize_layout(pattern, allocation.cover, decls, 1)
            assert set(plan.layout.arrays()) == set(pattern.arrays())

    def test_single_array_is_untouched(self, paper_pattern):
        allocation = AddressRegisterAllocator(AguSpec(2, 1)) \
            .allocate(paper_pattern)
        plan = optimize_layout(paper_pattern, allocation.cover,
                               [ArrayDecl("A", length=16)], 1)
        assert plan.cost == plan.baseline_cost == allocation.total_cost

    def test_missing_declaration_rejected(self, paper_pattern):
        allocation = AddressRegisterAllocator(AguSpec(2, 1)) \
            .allocate(paper_pattern)
        with pytest.raises(LayoutError, match="no declarations"):
            optimize_layout(paper_pattern, allocation.cover, [], 1)


class TestLayoutAwareCodegen:
    def test_constant_cross_array_jump_folds_or_modifies(self):
        kernel = (LoopBuilder(n_iterations=8)
                  .array("x", length=4).array("y", length=4)
                  .read("x", 3).write("y", 0).build())
        allocation = AddressRegisterAllocator(AguSpec(1, 1)) \
            .allocate(kernel.pattern)
        plan = optimize_layout(kernel.pattern, allocation.cover,
                               kernel.arrays, 1)
        program = generate_address_code(kernel.pattern, allocation.cover,
                                        AguSpec(1, 1), layout=plan.layout)
        # No PointTo left in the body: every transition is constant.
        assert not any(isinstance(instr, PointTo)
                       for instr in program.body)
        assert program.overhead_per_iteration == plan.cost

    def test_simulation_verifies_layout_aware_code(self):
        kernel = (LoopBuilder(n_iterations=10)
                  .array("x", length=4).array("y", length=64)
                  .read("x", 3).write("y", 0).build())
        allocation = AddressRegisterAllocator(AguSpec(1, 1)) \
            .allocate(kernel.pattern)
        plan = optimize_layout(kernel.pattern, allocation.cover,
                               kernel.arrays, 1)
        program = generate_address_code(kernel.pattern, allocation.cover,
                                        AguSpec(1, 1), layout=plan.layout)
        result = simulate(program, kernel.loop, plan.layout)
        assert result.overhead_per_iteration == plan.cost

    def test_static_check_uses_layout_model(self, two_arrays_layout):
        # layout_cover_cost and codegen accounting must agree on any
        # cover; exercise via a ping-pong allocation.
        kernel = (LoopBuilder(n_iterations=4)
                  .array("x", length=8).array("y", length=8)
                  .read("x", 0).read("y", 0).build())
        allocation = AddressRegisterAllocator(AguSpec(1, 1)) \
            .allocate(kernel.pattern)
        program = generate_address_code(kernel.pattern, allocation.cover,
                                        AguSpec(1, 1),
                                        layout=two_arrays_layout)
        assert program.overhead_per_iteration == layout_cover_cost(
            allocation.cover, kernel.pattern, two_arrays_layout, 1)

    def test_without_layout_behaviour_unchanged(self, paper_pattern):
        allocation = AddressRegisterAllocator(AguSpec(2, 1)) \
            .allocate(paper_pattern)
        program = generate_address_code(paper_pattern, allocation.cover,
                                        AguSpec(2, 1))
        assert program.overhead_per_iteration == cover_cost(
            allocation.cover, paper_pattern, 1)


class TestCostModelConsistency:
    def test_guard_layout_agrees_with_symbolic_model(self):
        """With arrays long enough that no cross-array pair can land
        within the modify range, the layout-resolved cost must equal
        the paper's symbolic cost on every cover -- the two models are
        one model with different knowledge."""
        import random

        from repro.pathcover.paths import PathCover

        rng = random.Random(123)
        for _ in range(20):
            n = rng.randint(2, 10)
            pattern = generate_batch(
                RandomPatternConfig(n, offset_span=4, n_arrays=2), 1,
                seed=rng.randrange(10_000))[0]
            # Random cover.
            groups: dict[int, list[int]] = {}
            for position in range(n):
                groups.setdefault(rng.randrange(3), []).append(position)
            cover = PathCover.from_lists(groups.values(), n)
            decls = [ArrayDecl(name, length=32)
                     for name in pattern.arrays()]
            guard = MemoryLayout.contiguous(decls, gap=2)
            assert layout_cover_cost(cover, pattern, guard, 1) == \
                cover_cost(cover, pattern, 1)


class TestPipelineFlag:
    SOURCE = """
    int x[4], y[64];
    for (i = 0; i < 16; i++) {
        y[i] = x[3];
    }
    """

    def test_compile_kernel_with_layout_optimization(self):
        artifacts = compile_kernel(self.SOURCE, AguSpec(1, 1),
                                   optimize_array_layout=True)
        default = compile_kernel(self.SOURCE, AguSpec(1, 1))
        assert artifacts.simulation is not None
        assert artifacts.overhead_per_iteration <= \
            default.overhead_per_iteration
