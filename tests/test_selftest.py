"""Tests of the end-to-end self-test harness and the extra CLI verbs."""

import pytest

from repro.analysis.selftest import run_self_test
from repro.cli.main import main
from repro.errors import ReproError

PAPER_SOURCE = """
for (i = 2; i <= 40; i++) {
    A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
}
"""


class TestRunSelfTest:
    def test_passes_and_reports(self):
        report = run_self_test(n_instances=30, seed=11)
        assert report.n_instances == 30
        assert report.n_accesses_verified > 0
        assert report.n_zero_cost_allocations + \
            report.n_constrained_allocations == 30
        assert "self-test passed" in report.summary()

    def test_deterministic(self):
        first = run_self_test(n_instances=15, seed=3)
        second = run_self_test(n_instances=15, seed=3)
        assert first.n_accesses_verified == second.n_accesses_verified
        assert first.n_unit_cost_instructions == \
            second.n_unit_cost_instructions

    def test_zero_instances(self):
        report = run_self_test(n_instances=0)
        assert report.n_accesses_verified == 0

    def test_negative_instances_rejected(self):
        with pytest.raises(ReproError):
            run_self_test(n_instances=-1)


class TestCliVerbs:
    @pytest.fixture
    def kernel_file(self, tmp_path):
        path = tmp_path / "k.c"
        path.write_text(PAPER_SOURCE)
        return str(path)

    def test_verify(self, kernel_file, capsys):
        assert main(["verify", kernel_file, "-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "ok:" in out and "model agrees" in out

    def test_sweep(self, kernel_file, capsys):
        assert main(["sweep", kernel_file, "--max-registers", "4"]) == 0
        out = capsys.readouterr().out
        assert "register-pressure sweep" in out
        # K=4..1 rows present.
        assert out.count("\n") >= 7

    def test_selftest(self, capsys):
        assert main(["selftest", "--instances", "10"]) == 0
        assert "self-test passed" in capsys.readouterr().out
