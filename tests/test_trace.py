"""Unit tests for the plain-text trace format."""

import pytest

from repro.errors import WorkloadError
from repro.ir.builder import LoopBuilder, pattern_from_offsets
from repro.workloads.trace import (
    format_trace,
    load_trace,
    parse_trace,
    save_trace,
)


class TestParsing:
    def test_basic(self):
        pattern = parse_trace("""
        # the paper example, abbreviated
        step 1
        A +1
        A 0
        A -2 w
        """)
        assert pattern.offsets() == (1, 0, -2)
        assert pattern.step == 1
        assert pattern[2].is_write

    def test_default_step(self):
        assert parse_trace("A 0").step == 1

    def test_coefficient(self):
        pattern = parse_trace("x 3 coeff=2")
        assert pattern[0].coefficient == 2
        assert pattern[0].offset == 3

    def test_token_order_free(self):
        pattern = parse_trace("x 1 w coeff=2\nx 2 coeff=2 w")
        assert all(access.is_write for access in pattern)
        assert all(access.coefficient == 2 for access in pattern)

    def test_comments_and_blank_lines(self):
        pattern = parse_trace("\n# header\nA 1  # trailing\n\nB -1\n")
        assert len(pattern) == 2

    def test_empty_trace(self):
        assert len(parse_trace("# nothing\n")) == 0

    @pytest.mark.parametrize("text, fragment", [
        ("step", "step <int>"),
        ("step x", "integer"),
        ("step 0", "non-zero"),
        ("A", "expected"),
        ("A one", "integer"),
        ("9bad 0", "array name"),
        ("A 0 flags", "unknown token"),
        ("A 0\nstep 2", "precede"),
    ])
    def test_malformed(self, text, fragment):
        with pytest.raises(WorkloadError, match=fragment):
            parse_trace(text)


class TestRoundTrip:
    def test_simple_round_trip(self, paper_pattern):
        assert parse_trace(format_trace(paper_pattern)) == paper_pattern

    def test_rich_round_trip(self):
        pattern = (LoopBuilder(step=2)
                   .read("x", 3, coefficient=2)
                   .write("y", -1)
                   .read("h", 4, coefficient=0)
                   .build_pattern())
        assert parse_trace(format_trace(pattern)) == pattern

    def test_file_round_trip(self, tmp_path):
        pattern = pattern_from_offsets([1, -2, 0])
        target = save_trace(pattern, tmp_path / "sub" / "trace.txt")
        assert load_trace(target) == pattern


class TestCliTrace:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli.main import main
        trace = tmp_path / "t.txt"
        trace.write_text("A +1\nA 0\nA +2\nA -1\nA +1\nA 0\nA -2\n")
        assert main(["trace", str(trace), "-k", "2", "--listing"]) == 0
        out = capsys.readouterr().out
        assert "unit-cost/iter:  2" in out
        assert "USE" in out

    def test_trace_error_path(self, tmp_path, capsys):
        from repro.cli.main import main
        trace = tmp_path / "bad.txt"
        trace.write_text("A\n")
        assert main(["trace", str(trace)]) == 1
        assert "error:" in capsys.readouterr().err
