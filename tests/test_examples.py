"""Every example script must run cleanly and print its key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_FRAGMENTS = {
    "quickstart.py": ["K~ = 3", "USE", "simulator: verified"],
    "fir_register_pressure.py": ["fir16", "best-pair cost"],
    "heuristic_showdown.py": ["best-pair cuts naive cost"],
    "custom_kernel.py": ["stereo_mixer", "digraph", "K~="],
    "scalar_layout.py": ["Liao", "GOA over k=2"],
    "extensions_demo.py": ["modify registers", "reordering",
                           "addresses verified"],
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_FRAGMENTS))
def test_example_runs(name):
    output = run_example(name)
    for fragment in EXPECTED_FRAGMENTS[name]:
        assert fragment in output, (name, fragment)


def test_every_example_is_covered():
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXPECTED_FRAGMENTS)
