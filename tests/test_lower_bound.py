"""Unit tests for the matching-based lower bound and intra cover."""

import random

from repro.graph.access_graph import AccessGraph
from repro.ir.builder import pattern_from_offsets
from repro.pathcover.lower_bound import (
    intra_cover_lower_bound,
    min_intra_path_cover,
)
from repro.pathcover.verify import is_zero_cost_path

from conftest import random_offsets


class TestPaperExample:
    def test_lower_bound_value(self, paper_graph):
        # Two node-disjoint paths cover the intra DAG of Figure 1.
        assert intra_cover_lower_bound(paper_graph) == 2

    def test_cover_achieves_the_bound(self, paper_graph):
        cover = min_intra_path_cover(paper_graph)
        assert cover.n_paths == 2

    def test_cover_paths_are_intra_zero_cost(self, paper_graph):
        cover = min_intra_path_cover(paper_graph)
        for path in cover:
            assert is_zero_cost_path(path, paper_graph.pattern, 1,
                                     include_wrap=False)


class TestStructure:
    def test_chain_needs_one_path(self):
        graph = AccessGraph(pattern_from_offsets([0, 1, 2, 3]), 1)
        assert intra_cover_lower_bound(graph) == 1

    def test_antichain_needs_n_paths(self):
        graph = AccessGraph(pattern_from_offsets([0, 10, 20, 30]), 1)
        assert intra_cover_lower_bound(graph) == 4

    def test_empty_pattern(self):
        graph = AccessGraph(pattern_from_offsets([]), 1)
        assert intra_cover_lower_bound(graph) == 0
        assert min_intra_path_cover(graph).n_paths == 0

    def test_single_access(self):
        graph = AccessGraph(pattern_from_offsets([5]), 1)
        assert intra_cover_lower_bound(graph) == 1

    def test_wider_range_never_increases_bound(self, rng):
        for _ in range(30):
            offsets = random_offsets(rng, rng.randint(2, 14))
            pattern = pattern_from_offsets(offsets)
            narrow = intra_cover_lower_bound(AccessGraph(pattern, 1))
            wide = intra_cover_lower_bound(AccessGraph(pattern, 3))
            assert wide <= narrow


class TestCoverValidity:
    def test_cover_is_partition_on_random_instances(self, rng):
        for _ in range(40):
            offsets = random_offsets(rng, rng.randint(1, 16))
            graph = AccessGraph(pattern_from_offsets(offsets), 1)
            cover = min_intra_path_cover(graph)
            assert cover.n_accesses == len(offsets)
            assert cover.n_paths == intra_cover_lower_bound(graph)
            for path in cover:
                for p, q in path.transitions():
                    assert graph.has_intra_edge(p, q)
