"""Unit tests for scalar access sequences and their access graph."""

import pytest

from repro.errors import OffsetAssignmentError
from repro.ir.parser import parse_kernel
from repro.offset.access_graph import VariableAccessGraph
from repro.offset.sequence import AccessSequence, random_sequence


class TestAccessSequence:
    def test_variables_in_first_use_order(self):
        seq = AccessSequence(("b", "a", "b", "c"))
        assert seq.variables() == ("b", "a", "c")

    def test_transitions_skip_repeats(self):
        seq = AccessSequence(("a", "a", "b", "b", "a"))
        assert seq.transitions() == [("a", "b"), ("b", "a")]

    def test_project(self):
        seq = AccessSequence(("a", "b", "c", "a", "b"))
        assert seq.project(frozenset({"a", "c"})).names == ("a", "c", "a")

    def test_from_kernel(self):
        kernel = parse_kernel("""
        for (i = 0; i < 4; i++) {
            acc = A[i] * gain;
            y[i] = acc + bias;
        }
        """)
        seq = AccessSequence.from_kernel(kernel)
        assert seq.names == ("gain", "acc", "acc", "bias")

    def test_invalid_name_rejected(self):
        with pytest.raises(OffsetAssignmentError):
            AccessSequence(("ok", "not ok"))

    def test_len_iter_str(self):
        seq = AccessSequence(("x", "y"))
        assert len(seq) == 2
        assert list(seq) == ["x", "y"]
        assert str(seq) == "x y"


class TestRandomSequence:
    def test_deterministic(self):
        assert random_sequence(5, 30, seed=3) == \
            random_sequence(5, 30, seed=3)

    def test_length_and_names(self):
        seq = random_sequence(4, 25, seed=1)
        assert len(seq) == 25
        assert set(seq.names) <= {f"v{i}" for i in range(4)}

    def test_locality_extremes(self):
        # locality=1: after the first access only the two most recent
        # variables are revisited.
        seq = random_sequence(8, 40, seed=5, locality=1.0)
        assert len(set(seq.names)) <= 2

    @pytest.mark.parametrize("kwargs", [
        dict(n_variables=0, length=5),
        dict(n_variables=3, length=-1),
        dict(n_variables=3, length=5, locality=1.5),
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(OffsetAssignmentError):
            random_sequence(**kwargs)


class TestVariableAccessGraph:
    def test_weights_count_adjacencies(self):
        seq = AccessSequence(("a", "b", "a", "b", "c"))
        graph = VariableAccessGraph(seq)
        assert graph.weight("a", "b") == 3
        assert graph.weight("b", "c") == 1
        assert graph.weight("a", "c") == 0

    def test_weight_is_symmetric(self):
        seq = AccessSequence(("a", "b", "b", "a"))
        graph = VariableAccessGraph(seq)
        assert graph.weight("a", "b") == graph.weight("b", "a") == 2

    def test_total_weight_counts_costable_transitions(self):
        seq = AccessSequence(("a", "b", "c", "a"))
        graph = VariableAccessGraph(seq)
        assert graph.total_weight == 3

    def test_incident_weight(self):
        seq = AccessSequence(("a", "b", "a", "c"))
        graph = VariableAccessGraph(seq)
        assert graph.incident_weight("a") == 3
        assert graph.incident_weight("b") == 2
        assert graph.incident_weight("c") == 1

    def test_edges_sorted_names(self):
        seq = AccessSequence(("z", "a"))
        graph = VariableAccessGraph(seq)
        assert graph.edges() == [(1, "a", "z")]
