"""Unit tests for the greedy zero-cost cover heuristic."""

import pytest

from repro.errors import InfeasibleZeroCostCover
from repro.graph.access_graph import AccessGraph
from repro.ir.builder import LoopBuilder, pattern_from_offsets
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.verify import is_zero_cost_path

from conftest import random_offsets


class TestValidity:
    def test_paper_example_cover_is_zero_cost(self, paper_graph):
        cover = greedy_zero_cost_cover(paper_graph)
        for path in cover:
            assert is_zero_cost_path(path, paper_graph.pattern, 1)

    def test_random_instances_always_zero_cost(self, rng):
        for _ in range(60):
            offsets = random_offsets(rng, rng.randint(1, 20))
            m = rng.choice([1, 2, 4])
            graph = AccessGraph(pattern_from_offsets(offsets), m)
            cover = greedy_zero_cost_cover(graph)
            assert cover.n_accesses == len(offsets)
            for path in cover:
                assert is_zero_cost_path(path, graph.pattern, m)

    def test_monotone_chain_single_path(self):
        # Offsets 0..5 with the wrap 0+1-5 = -4: must split, but the
        # ascending prefix chains are still recognized.
        graph = AccessGraph(pattern_from_offsets([0, 1, 2, 3, 4, 5]), 1)
        cover = greedy_zero_cost_cover(graph)
        for path in cover:
            assert is_zero_cost_path(path, graph.pattern, 1)

    def test_perfect_sliding_window(self):
        # Classic FIR shape: offsets 0,1,2 then wrap 0+1-2 = -1: one
        # register serves everything for free.
        graph = AccessGraph(pattern_from_offsets([0, 1, 2]), 1)
        cover = greedy_zero_cost_cover(graph)
        assert cover.n_paths == 1


class TestInfeasibility:
    def test_step_exceeding_range_raises(self):
        pattern = pattern_from_offsets([0], step=3)
        with pytest.raises(InfeasibleZeroCostCover):
            greedy_zero_cost_cover(AccessGraph(pattern, 1))

    def test_coefficient_times_step_exceeding_range_raises(self):
        pattern = (LoopBuilder().read("x", 0, coefficient=2)
                   .build_pattern())
        with pytest.raises(InfeasibleZeroCostCover):
            greedy_zero_cost_cover(AccessGraph(pattern, 1))

    def test_loop_invariant_accesses_always_feasible(self):
        pattern = (LoopBuilder().read("h", 0, coefficient=0)
                   .read("h", 9, coefficient=0).build_pattern())
        cover = greedy_zero_cost_cover(AccessGraph(pattern, 1))
        assert cover.n_paths == 2  # distance 9 > M forces two registers

    def test_zero_modify_range_with_invariant_accesses(self):
        pattern = (LoopBuilder().read("h", 4, coefficient=0)
                   .read("h", 4, coefficient=0).build_pattern())
        cover = greedy_zero_cost_cover(AccessGraph(pattern, 0))
        assert cover.n_paths == 1  # same element: distance 0, wrap 0


class TestQuality:
    def test_never_worse_than_singletons(self, rng):
        for _ in range(30):
            offsets = random_offsets(rng, rng.randint(1, 15))
            graph = AccessGraph(pattern_from_offsets(offsets), 2)
            cover = greedy_zero_cost_cover(graph)
            assert cover.n_paths <= len(offsets)
