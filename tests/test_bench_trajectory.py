"""Unit tests for the perf-trajectory layer (tools/).

``tools/bench_trajectory.py`` records labelled benchmark runs into
``BENCH_<n>.json``; ``tools/check_bench_regression.py`` gates fresh
runs against the committed trajectory and proves speedups between two
labelled runs.  These tests cover the pure parts -- schema round-trip,
run upsert/lookup, gate pass/fail/tolerance edges, the speedup
geomean -- without ever spawning a real pytest-benchmark subprocess.
"""

import importlib.util
import random
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  TOOLS / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    # bench_trajectory must be importable by check_bench_regression.
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


trajectory = _load("bench_trajectory")
gate = _load("check_bench_regression")


def make_entries(**seconds: float) -> dict:
    return {name: {"seconds": value, "mean_seconds": value * 1.1,
                   "rounds": 5}
            for name, value in seconds.items()}


class TestTrajectorySchema:
    def test_round_trip(self, tmp_path):
        record = trajectory.empty_trajectory()
        run = trajectory.build_run(
            "before", make_entries(bench_a=0.5, bench_b=0.01),
            selection="solver", note="seed state")
        trajectory.upsert_run(record, run)
        path = tmp_path / "BENCH_T.json"
        trajectory.save_trajectory(path, record)

        loaded = trajectory.load_trajectory(path)
        assert loaded["schema"] == trajectory.TRAJECTORY_SCHEMA
        got = trajectory.get_run(loaded, "before")
        assert got["entries"] == run["entries"]
        assert got["note"] == "seed state"
        assert got["selection"] == "solver"
        assert "machine" in got and "git_rev" in got

    def test_save_is_deterministic(self, tmp_path):
        record = trajectory.empty_trajectory()
        run = trajectory.build_run("x", make_entries(b=1.0, a=2.0),
                                   selection="all")
        trajectory.upsert_run(record, run)
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        trajectory.save_trajectory(first, record)
        trajectory.save_trajectory(second, record)
        assert first.read_bytes() == second.read_bytes()

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "BENCH_T.json"
        path.write_text('{"schema": 999, "runs": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="schema"):
            trajectory.load_trajectory(path)

    def test_malformed_runs_rejected(self, tmp_path):
        path = tmp_path / "BENCH_T.json"
        path.write_text(
            f'{{"schema": {trajectory.TRAJECTORY_SCHEMA}, '
            f'"runs": "oops"}}', encoding="utf-8")
        with pytest.raises(ValueError, match="runs"):
            trajectory.load_trajectory(path)

    def test_upsert_replaces_same_label(self):
        record = trajectory.empty_trajectory()
        trajectory.upsert_run(record, trajectory.build_run(
            "ci", make_entries(a=1.0), selection="s"))
        trajectory.upsert_run(record, trajectory.build_run(
            "ci", make_entries(a=2.0), selection="s"))
        assert len(record["runs"]) == 1
        assert trajectory.get_run(record, "ci")["entries"]["a"][
            "seconds"] == 2.0

    def test_get_run_default_is_last(self):
        record = trajectory.empty_trajectory()
        trajectory.upsert_run(record, trajectory.build_run(
            "before", make_entries(a=1.0), selection="s"))
        trajectory.upsert_run(record, trajectory.build_run(
            "after", make_entries(a=0.5), selection="s"))
        assert trajectory.get_run(record)["label"] == "after"
        with pytest.raises(ValueError, match="no run labelled"):
            trajectory.get_run(record, "nope")

    def test_get_run_on_empty_trajectory(self):
        with pytest.raises(ValueError, match="no runs"):
            trajectory.get_run(trajectory.empty_trajectory())

    def test_entries_from_pytest_benchmark(self):
        data = {"benchmarks": [
            {"name": "bench_z", "stats": {"min": 0.2, "mean": 0.3,
                                          "rounds": 7}},
            {"name": "bench_a", "stats": {"min": 0.1, "mean": 0.15,
                                          "rounds": 9}},
        ]}
        entries = trajectory.entries_from_pytest_benchmark(data)
        assert list(entries) == ["bench_a", "bench_z"]  # sorted
        assert entries["bench_z"] == {"seconds": 0.2,
                                      "mean_seconds": 0.3, "rounds": 7}


class TestRegressionGate:
    def test_pass_when_within_tolerance(self):
        base = make_entries(a=0.100, b=0.010)
        cur = make_entries(a=0.250, b=0.005)
        lines, failures = gate.compare_entries(base, cur, tolerance=3.0)
        assert failures == []
        assert len(lines) == 2

    def test_fail_past_tolerance(self):
        base = make_entries(a=0.100)
        cur = make_entries(a=0.301)
        _lines, failures = gate.compare_entries(base, cur, tolerance=3.0)
        assert len(failures) == 1
        assert "a" in failures[0]

    def test_exact_tolerance_boundary_passes(self):
        """The gate fails strictly past the tolerance, not at it."""
        base = make_entries(a=0.100)
        cur = make_entries(a=0.300)
        _lines, failures = gate.compare_entries(base, cur, tolerance=3.0)
        assert failures == []

    def test_new_bench_never_fails(self):
        base = make_entries(a=0.1)
        cur = make_entries(a=0.1, brand_new=5.0)
        _lines, failures = gate.compare_entries(base, cur, tolerance=3.0)
        assert failures == []

    def test_missing_bench_fails_only_under_require_all(self):
        base = make_entries(a=0.1, gone=0.1)
        cur = make_entries(a=0.1)
        _lines, lax = gate.compare_entries(base, cur, tolerance=3.0)
        assert lax == []
        _lines, strict = gate.compare_entries(base, cur, tolerance=3.0,
                                              require_all=True)
        assert len(strict) == 1 and "gone" in strict[0]

    def test_zero_baseline_always_fails(self):
        base = make_entries(a=0.0)
        cur = make_entries(a=0.001)
        _lines, failures = gate.compare_entries(base, cur, tolerance=3.0)
        assert len(failures) == 1

    def test_speedup_geomean(self):
        base = make_entries(solver_a=0.4, solver_b=0.1, other=1.0)
        cur = make_entries(solver_a=0.1, solver_b=0.025, other=1.0)
        lines, geomean = gate.speedup_report(base, cur, match="solver")
        assert len(lines) == 2
        assert geomean == pytest.approx(4.0)

    def test_speedup_requires_a_match(self):
        base = make_entries(a=1.0)
        cur = make_entries(a=1.0)
        with pytest.raises(ValueError, match="no common benches"):
            gate.speedup_report(base, cur, match="nothing-like-this")


class TestGateCli:
    def _write(self, tmp_path, name, runs):
        record = trajectory.empty_trajectory()
        for label, entries in runs:
            trajectory.upsert_run(record, trajectory.build_run(
                label, entries, selection="solver"))
        path = tmp_path / name
        trajectory.save_trajectory(path, record)
        return path

    def test_gate_mode_pass_and_fail(self, tmp_path, capsys):
        committed = self._write(tmp_path, "BENCH_T.json",
                                [("before", make_entries(a=0.1))])
        fresh_ok = self._write(tmp_path, "fresh_ok.json",
                               [("ci", make_entries(a=0.15))])
        fresh_bad = self._write(tmp_path, "fresh_bad.json",
                                [("ci", make_entries(a=0.9))])
        assert gate.main(["--trajectory", str(committed),
                          "--current", str(fresh_ok)]) == 0
        assert gate.main(["--trajectory", str(committed),
                          "--current", str(fresh_bad)]) == 1
        # A looser tolerance turns the same numbers into a pass.
        assert gate.main(["--trajectory", str(committed),
                          "--current", str(fresh_bad),
                          "--tolerance", "10"]) == 0
        capsys.readouterr()

    def test_compare_mode_min_speedup(self, tmp_path, capsys):
        committed = self._write(
            tmp_path, "BENCH_T.json",
            [("before", make_entries(solver_a=0.4)),
             ("after", make_entries(solver_a=0.1))])
        assert gate.main(["--trajectory", str(committed),
                          "--compare", "before", "after",
                          "--match", "solver",
                          "--min-speedup", "3.0"]) == 0
        assert gate.main(["--trajectory", str(committed),
                          "--compare", "before", "after",
                          "--match", "solver",
                          "--min-speedup", "5.0"]) == 1
        capsys.readouterr()


class TestGateProperties:
    def test_identical_runs_always_pass_any_tolerance_above_one(self):
        """Property: re-gating a run against itself can never fail --
        the gate must be reflexive for any tolerance > 1."""
        rng = random.Random(17)
        for _ in range(50):
            entries = make_entries(**{
                f"bench_{i}": rng.uniform(1e-6, 10.0)
                for i in range(rng.randint(1, 8))})
            tolerance = rng.uniform(1.0001, 10.0)
            _lines, failures = gate.compare_entries(
                entries, dict(entries), tolerance=tolerance,
                require_all=True)
            assert failures == []

    def test_scaling_by_factor_flips_exactly_at_tolerance(self):
        rng = random.Random(23)
        for _ in range(50):
            seconds = rng.uniform(1e-4, 2.0)
            tolerance = rng.uniform(1.5, 4.0)
            base = make_entries(a=seconds)
            slow = make_entries(a=seconds * tolerance * 1.01)
            fast = make_entries(a=seconds * tolerance * 0.99)
            assert gate.compare_entries(base, slow, tolerance)[1]
            assert not gate.compare_entries(base, fast, tolerance)[1]
