"""Unit tests for the address instruction set."""

import pytest

from repro.agu.isa import Modify, PointTo, Use
from repro.errors import CodegenError
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayDecl


class TestPointTo:
    def test_resolve(self):
        layout = MemoryLayout.contiguous([ArrayDecl("A", length=32)],
                                         origin=100)
        instr = PointTo(0, "A", 1, 3)
        assert instr.resolve(layout, 5) == 108

    def test_resolve_scales_by_element_size(self):
        layout = MemoryLayout.contiguous(
            [ArrayDecl("A", element_size=2, length=32)])
        instr = PointTo(0, "A", 1, 0)
        assert instr.resolve(layout, 4) == 8

    def test_resolve_constant_index(self):
        layout = MemoryLayout.contiguous([ArrayDecl("h", length=8)])
        instr = PointTo(1, "h", 0, 5)
        assert instr.resolve(layout, 999) == 5

    def test_cost_is_unit(self):
        assert PointTo(0, "A", 1, 0).cost == 1

    @pytest.mark.parametrize("coeff, offset, fragment", [
        (1, 3, "&A[i+3]"), (1, -2, "&A[i-2]"), (2, 1, "2*i+1"),
        (0, 7, "&A[7]"),
    ])
    def test_str(self, coeff, offset, fragment):
        assert fragment in str(PointTo(0, "A", coeff, offset))


class TestModify:
    def test_cost_is_unit(self):
        assert Modify(0, 5).cost == 1

    def test_str_positive_is_adar(self):
        assert str(Modify(0, 5)) == "ADAR  AR0, #5"

    def test_str_negative_is_sbar(self):
        assert str(Modify(1, -3)) == "SBAR  AR1, #3"

    def test_zero_delta_rejected(self):
        with pytest.raises(CodegenError):
            Modify(0, 0)


class TestUse:
    def test_cost_is_free(self):
        assert Use(0, 0).cost == 0
        assert Use(0, 0, post_modify=1).cost == 0

    @pytest.mark.parametrize("post, fragment", [
        (None, "*(AR0)"), (1, "*(AR0)+1"), (-2, "*(AR0)-2"), (0, "*(AR0)+0"),
    ])
    def test_str(self, post, fragment):
        assert fragment in str(Use(0, 0, post_modify=post))
