"""Tests of the public API surface itself."""

import importlib
import pkgutil

import pytest

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_is_sorted(self):
        assert list(repro.__all__) == sorted(repro.__all__)

    def test_version_matches_pyproject(self):
        from pathlib import Path
        pyproject = Path(repro.__file__).resolve().parents[2] \
            / "pyproject.toml"
        text = pyproject.read_text()
        assert f'version = "{repro.__version__}"' in text

    def test_key_entry_points_are_callable_or_types(self):
        for name in ("AddressRegisterAllocator", "AguSpec",
                     "compile_kernel", "parse_kernel",
                     "minimum_zero_cost_cover", "best_pair_merge",
                     "allocate_with_modify_registers",
                     "reorder_accesses"):
            assert callable(getattr(repro, name)), name


class TestModuleHygiene:
    def _walk_modules(self):
        for module_info in pkgutil.walk_packages(repro.__path__,
                                                 prefix="repro."):
            yield importlib.import_module(module_info.name)

    def test_every_module_imports(self):
        modules = list(self._walk_modules())
        assert len(modules) >= 40

    def test_every_module_has_a_docstring(self):
        for module in self._walk_modules():
            assert module.__doc__, f"{module.__name__} lacks a docstring"

    def test_every_public_package_reexports_consistently(self):
        for module in self._walk_modules():
            exported = getattr(module, "__all__", None)
            if exported is None:
                continue
            for name in exported:
                assert hasattr(module, name), \
                    f"{module.__name__}.__all__ lists missing {name!r}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors
        base = errors.ReproError
        for name in dir(errors):
            candidate = getattr(errors, name)
            if isinstance(candidate, type) and \
                    issubclass(candidate, Exception) and \
                    candidate is not Exception:
                assert issubclass(candidate, base), name

    def test_library_raises_only_repro_errors_on_bad_input(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            repro.parse_kernel("not a kernel")
        with pytest.raises(ReproError):
            repro.AguSpec(0, 1)
        with pytest.raises(ReproError):
            repro.parse_trace("step")
