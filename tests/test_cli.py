"""Tests of the command-line interface."""

import json

import pytest

from repro.cli.main import main

PAPER_SOURCE = """
for (i = 2; i <= N; i++) {
    A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
}
"""


@pytest.fixture
def kernel_file(tmp_path):
    path = tmp_path / "example.c"
    path.write_text(PAPER_SOURCE)
    return str(path)


class TestCompile:
    def test_compile_prints_summary_and_listing(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "-k", "2", "-m", "1"]) == 0
        out = capsys.readouterr().out
        assert "K~ (virtual):    3 (exact)" in out
        assert "USE" in out
        assert "simulation:" in out

    def test_compile_no_sim(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--no-sim"]) == 0
        assert "simulation:" not in capsys.readouterr().out

    def test_compile_with_preset(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--preset",
                     "ti_c25_like"]) == 0
        assert "ti_c25_like" in capsys.readouterr().out

    def test_compile_preset_with_overrides(self, kernel_file, capsys):
        assert main(["compile", kernel_file, "--preset", "ti_c25_like",
                     "-k", "2"]) == 0
        assert "K=2" in capsys.readouterr().out

    def test_compile_stdin(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(PAPER_SOURCE))
        assert main(["compile", "-"]) == 0
        assert "allocation of 7 accesses" in capsys.readouterr().out

    def test_missing_file_reports_error(self, capsys):
        assert main(["compile", "/nonexistent/file.c"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_parse_error_reports_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.c"
        bad.write_text("for (i = 0; i < 3; i++) { A[i] }")
        assert main(["compile", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestGraph:
    def test_ascii(self, kernel_file, capsys):
        assert main(["graph", kernel_file]) == 0
        out = capsys.readouterr().out
        assert "a_1" in out and "->" in out

    def test_dot_with_wrap(self, kernel_file, capsys):
        assert main(["graph", kernel_file, "--dot", "--wrap"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "dashed" in out


class TestKernels:
    def test_list(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "fir8" in out and "paper_example" in out

    def test_show(self, capsys):
        assert main(["kernels", "fir8"]) == 0
        out = capsys.readouterr().out
        assert "for (" in out and "h[0]" in out

    def test_unknown_kernel(self, capsys):
        assert main(["kernels", "nope"]) == 1
        assert "unknown kernel" in capsys.readouterr().err


class TestBatch:
    def test_suite_batch_prints_report(self, capsys):
        assert main(["batch", "--suite", "core8", "--iterations",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "fir8" in out and "paper_example" in out
        assert "8 job(s): 8 compiled, 0 cache hit(s)" in out

    def test_explicit_kernels_with_baseline(self, capsys):
        assert main(["batch", "--kernels", "fir8,dot_product", "-k", "2",
                     "--iterations", "2", "--baseline"]) == 0
        out = capsys.readouterr().out
        assert "2 job(s)" in out and "base/iter" in out

    def test_disk_cache_makes_second_run_hit(self, tmp_path, capsys):
        cache = str(tmp_path / "cache.json")
        assert main(["batch", "--suite", "core8", "--iterations", "2",
                     "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["batch", "--suite", "core8", "--iterations", "2",
                     "--cache", cache, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "0 compiled, 8 cache hit(s)" in out

    def test_json_report(self, tmp_path, capsys):
        target = tmp_path / "batch.json"
        assert main(["batch", "--suite", "core8", "--no-sim",
                     "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert len(payload["results"]) == 8
        assert payload["results"][0]["digest"]

    def test_unknown_suite_fails_cleanly(self, capsys):
        assert main(["batch", "--suite", "nope"]) == 1
        assert "unknown suite" in capsys.readouterr().err


class TestStats:
    TINY = ["stats", "--n", "10,14", "--m", "1", "--k", "2",
            "--patterns", "3", "--repeats", "2"]

    def test_tiny_grid_streams_and_summarizes(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        assert "EXP-S1" in out and "EXP-S2" in out
        assert "average reduction" in out
        assert "2 grid point(s): 2 compiled, 0 cache hit(s)" in out

    def test_no_progress_suppresses_streaming_lines(self, capsys):
        assert main([*self.TINY, "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" not in out
        assert "EXP-S1" in out

    def test_cached_rerun_recomputes_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "grid-cache")
        assert main([*self.TINY, "--cache", cache]) == 0
        capsys.readouterr()
        assert main([*self.TINY, "--cache", cache, "--workers",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "0 compiled, 2 cache hit(s)" in out
        assert "[cached]" in out

    def test_json_report(self, tmp_path, capsys):
        target = tmp_path / "stats.json"
        assert main([*self.TINY, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert len(payload["rows"]) == 2
        assert payload["n_points_compiled"] == 2

    def test_quick_flag_uses_scaled_down_grid(self, capsys):
        assert main(["stats", "--quick", "--patterns", "2",
                     "--repeats", "2", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "8 grid point(s): 8 compiled" in out


class TestAblate:
    TINY = ["ablate", "pathcover", "--set", "n_values=8,12",
            "--set", "m_values=1", "--set", "patterns_per_config=3"]

    def test_tiny_grid_streams_and_summarizes(self, capsys):
        assert main(self.TINY) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        assert "EXP-A1" in out
        assert "2 point(s): 2 compiled, 0 cache hit(s)" in out

    def test_no_progress_suppresses_streaming_lines(self, capsys):
        assert main([*self.TINY, "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" not in out
        assert "EXP-A1" in out

    def test_cached_rerun_recomputes_nothing(self, tmp_path, capsys):
        cache = str(tmp_path / "point-cache")
        assert main([*self.TINY, "--cache", cache]) == 0
        capsys.readouterr()
        assert main([*self.TINY, "--cache", cache, "--workers",
                     "2"]) == 0
        out = capsys.readouterr().out
        assert "0 compiled, 2 cache hit(s)" in out
        assert "[cached]" in out

    def test_quick_flag_uses_scaled_down_grid(self, capsys):
        assert main(["ablate", "reorder", "--quick", "--set",
                     "patterns_per_config=3", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "EXP-X2" in out
        assert "2 point(s): 2 compiled" in out

    def test_headline_and_tables_render(self, capsys):
        assert main(["ablate", "offset", "--quick", "--set",
                     "sequences_per_config=3", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "EXP-O1a" in out and "EXP-O1b" in out
        assert "mean SOA reduction vs OFU" in out

    def test_json_report(self, tmp_path, capsys):
        target = tmp_path / "ablate.json"
        assert main([*self.TINY, "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert len(payload["rows"]) == 2
        assert payload["n_points_compiled"] == 2

    def test_enum_override_round_trips(self, capsys):
        assert main(["ablate", "merging", "--quick", "--set",
                     "patterns_per_config=2", "--set",
                     "cost_model=intra", "--no-progress"]) == 0
        assert "EXP-A3" in capsys.readouterr().out

    def test_unknown_field_fails_cleanly(self, capsys):
        assert main(["ablate", "pathcover", "--set", "bogus=1"]) == 1
        assert "unknown config field" in capsys.readouterr().err

    def test_malformed_override_fails_cleanly(self, capsys):
        assert main(["ablate", "pathcover", "--set", "n_values"]) == 1
        assert "field=value" in capsys.readouterr().err

    def test_bad_value_fails_cleanly(self, capsys):
        assert main(["ablate", "pathcover", "--set",
                     "patterns_per_config=lots"]) == 1
        assert "invalid value" in capsys.readouterr().err

    def test_empty_grid_fails_cleanly(self, capsys):
        assert main(["ablate", "pathcover", "--set", "n_values="]) == 1
        assert "zero points" in capsys.readouterr().err

    def test_zero_patterns_fails_cleanly(self, capsys):
        assert main(["ablate", "pathcover", "--set",
                     "patterns_per_config=0"]) == 1
        assert "must be >= 1" in capsys.readouterr().err

    def test_experiment_subcommand_delegates_to_registry(self, capsys):
        """`experiment <id> --quick` and `ablate <id> --quick` render
        the same tables and headline for registered ablations."""
        assert main(["experiment", "reorder", "--quick"]) == 0
        via_experiment = capsys.readouterr().out
        assert main(["ablate", "reorder", "--quick",
                     "--no-progress"]) == 0
        via_ablate = capsys.readouterr().out
        assert "EXP-X2" in via_experiment
        assert "mean reduction from reordering" in via_experiment
        table_and_headline = via_experiment.strip().splitlines()
        assert all(line in via_ablate for line in table_and_headline)


class TestCacheServe:
    def test_rejects_a_remote_backing_store(self, capsys):
        assert main(["cache-serve", "--store",
                     "tcp://127.0.0.1:8741"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_rejects_an_unknown_store_scheme(self, capsys):
        assert main(["cache-serve", "--store", "redis://x:1"]) == 1
        assert "unknown cache scheme" in capsys.readouterr().err

    def test_port_in_use_reports_a_clean_error(self, capsys):
        from repro.batch.cache import InMemoryLRUCache
        from repro.batch.service import CacheServer

        with CacheServer(InMemoryLRUCache()) as occupant:
            assert main(["cache-serve", "--store", "mem", "--port",
                         str(occupant.address[1])]) == 1
        err = capsys.readouterr().err
        assert "error:" in err and "cannot serve" in err

    def test_stats_through_a_live_server(self, tmp_path, capsys):
        """The multi-host flow end to end: two `stats` runs sharing
        one `cache-serve` store; the second recompiles nothing."""
        from repro.batch.cache import ShardedDirectoryCache
        from repro.batch.service import CacheServer

        store = ShardedDirectoryCache(tmp_path / "served")
        with CacheServer(store) as server:
            spec = server.endpoint
            assert main([*TestStats.TINY, "--cache", spec]) == 0
            first = capsys.readouterr().out
            assert "2 grid point(s): 2 compiled" in first
            assert main([*TestStats.TINY, "--cache", spec,
                         "--workers", "2"]) == 0
            second = capsys.readouterr().out
            assert "0 compiled, 2 cache hit(s)" in second
            assert "[cached]" in second
        assert len(store) == 2  # persisted in the backing store

    def test_serve_lifecycle_over_a_subprocess(self, tmp_path):
        """`cache-serve` as deployed: ephemeral port announced on
        stdout, clients served, SIGTERM → graceful shutdown with a
        stats line and exit code 0."""
        import os
        import re
        import signal
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.batch.cache import ShardedDirectoryCache
        from repro.batch.service import RemoteCache

        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main", "cache-serve",
             "--store", str(tmp_path / "store"), "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            match = None
            seen = []
            for _ in range(10):  # skip interpreter noise (warnings)
                line = process.stdout.readline()
                seen.append(line)
                match = re.search(r"tcp://([0-9.]+):(\d+)", line)
                if match or not line:
                    break
            assert match, f"no endpoint announced in: {seen!r}"
            client = RemoteCache(match[1], int(match[2]))
            client.put("a" * 64, {"v": 1})
            assert client.get("a" * 64) == {"v": 1}
        finally:
            process.send_signal(signal.SIGTERM)
            out, _err = process.communicate(timeout=30)
        assert process.returncode == 0
        assert "cache server stopped" in out
        assert "1 hit(s), 0 miss(es), 1 store(s)" in out
        # The backing store outlives the server.
        survivor = ShardedDirectoryCache(tmp_path / "store")
        assert survivor.get("a" * 64) == {"v": 1}


class TestExperiment:
    def test_quick_stats_with_json(self, tmp_path, capsys):
        target = tmp_path / "stats.json"
        assert main(["experiment", "stats", "--quick", "--json",
                     str(target)]) == 0
        out = capsys.readouterr().out
        assert "EXP-S1" in out
        assert "average reduction" in out
        payload = json.loads(target.read_text())
        assert "rows" in payload and "average_reduction_pct" in payload
