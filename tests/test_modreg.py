"""Unit tests for the modify-register (MR) extension."""

import pytest

from repro.agu.codegen import generate_address_code
from repro.agu.isa import LoadMr, Use
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.core.config import AllocatorConfig
from repro.errors import CodegenError
from repro.graph.distance import transition_cost
from repro.ir.builder import loop_from_offsets, pattern_from_offsets
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayDecl
from repro.merging.cost import CostModel, cover_cost, path_cost
from repro.modreg import (
    allocate_with_modify_registers,
    delta_histogram,
    residual_cost,
    select_modify_values,
)
from repro.pathcover.paths import Path, PathCover

#: Offsets engineered so a K=1 register repeatedly jumps by +10, +10,
#: then back by -20 (wrap -19 with step 1): ideal MR material.
JUMPY = [0, 10, 20, 0, 10, 20]


@pytest.fixture
def jumpy_cover():
    pattern = pattern_from_offsets(JUMPY)
    return pattern, PathCover.from_lists([range(6)], 6)


class TestExtendedCostModel:
    def test_free_delta_suppresses_cost(self):
        assert transition_cost(10, 1) == 1
        assert transition_cost(10, 1, frozenset({10})) == 0
        assert transition_cost(-10, 1, frozenset({10})) == 1

    def test_none_distance_never_free(self):
        assert transition_cost(None, 1, frozenset({0, 1, 2})) == 1

    def test_path_cost_with_free_deltas(self, jumpy_cover):
        pattern, cover = jumpy_cover
        path = cover.paths[0]
        assert path_cost(path, pattern, 1) == 6
        assert path_cost(path, pattern, 1,
                         free_deltas=frozenset({10})) == 2
        assert path_cost(path, pattern, 1,
                         free_deltas=frozenset({10, -20, -19})) == 0


class TestSelection:
    def test_histogram_counts_unit_cost_deltas_only(self, jumpy_cover):
        pattern, cover = jumpy_cover
        histogram = delta_histogram(cover, pattern, 1)
        assert histogram == {10: 4, -20: 1, -19: 1}

    def test_intra_model_excludes_wrap(self, jumpy_cover):
        pattern, cover = jumpy_cover
        histogram = delta_histogram(cover, pattern, 1, CostModel.INTRA)
        assert histogram == {10: 4, -20: 1}

    def test_selection_is_top_frequency(self, jumpy_cover):
        pattern, cover = jumpy_cover
        assert select_modify_values(cover, pattern, 1, 1) == (10,)
        values2 = select_modify_values(cover, pattern, 1, 2)
        assert values2[0] == 10 and set(values2) < {10, -20, -19, -19}

    def test_selection_zero_registers(self, jumpy_cover):
        pattern, cover = jumpy_cover
        assert select_modify_values(cover, pattern, 1, 0) == ()

    def test_selection_caps_at_distinct_deltas(self, jumpy_cover):
        pattern, cover = jumpy_cover
        assert len(select_modify_values(cover, pattern, 1, 99)) == 3

    def test_residual_cost(self, jumpy_cover):
        pattern, cover = jumpy_cover
        assert residual_cost(cover, pattern, 1, (10,)) == 2
        assert residual_cost(cover, pattern, 1, (10, -20, -19)) == 0

    def test_selection_optimality_exhaustive(self, rng):
        """Greedy-by-frequency must equal brute force over value sets."""
        import itertools
        for _ in range(15):
            offsets = [rng.randint(-8, 8) for _ in range(8)]
            pattern = pattern_from_offsets(offsets)
            cover = PathCover.from_lists([range(8)], 8)
            histogram = delta_histogram(cover, pattern, 1)
            candidates = list(histogram)
            chosen = select_modify_values(cover, pattern, 1, 2)
            best = min(
                (residual_cost(cover, pattern, 1, combo)
                 for r in range(min(2, len(candidates)) + 1)
                 for combo in itertools.combinations(candidates, r)),
                default=residual_cost(cover, pattern, 1, ()))
            assert residual_cost(cover, pattern, 1, chosen) == best


class TestRefinement:
    def test_never_worse_than_baseline(self, rng):
        for trial in range(15):
            offsets = [rng.randint(-10, 10) for _ in range(12)]
            pattern = pattern_from_offsets(offsets)
            spec = AguSpec(2, 1, n_modify_registers=2)
            result = allocate_with_modify_registers(pattern, spec)
            assert result.total_cost <= result.baseline_cost
            assert result.savings >= 0

    def test_zero_mrs_reduces_to_paper(self):
        pattern = pattern_from_offsets(JUMPY)
        spec = AguSpec(1, 1)
        result = allocate_with_modify_registers(pattern, spec)
        assert result.modify_values == ()
        assert result.total_cost == result.baseline_cost == 6

    def test_jumpy_pattern_collapses(self):
        pattern = pattern_from_offsets(JUMPY)
        spec = AguSpec(1, 1, n_modify_registers=2)
        result = allocate_with_modify_registers(pattern, spec)
        assert result.total_cost <= 2
        assert 10 in result.modify_values

    def test_more_mrs_never_hurt(self):
        pattern = pattern_from_offsets(JUMPY)
        costs = [
            allocate_with_modify_registers(
                pattern, AguSpec(1, 1, n_modify_registers=r)).total_cost
            for r in (0, 1, 2, 3)
        ]
        assert costs == sorted(costs, reverse=True)

    def test_empty_pattern(self):
        result = allocate_with_modify_registers(
            pattern_from_offsets([]), AguSpec(1, 1, n_modify_registers=2))
        assert result.total_cost == 0


class TestCodegenAndSimulation:
    def test_program_uses_mr_folding(self):
        pattern = pattern_from_offsets(JUMPY)
        spec = AguSpec(1, 1, "mr", n_modify_registers=2)
        result = allocate_with_modify_registers(pattern, spec)
        program = generate_address_code(pattern, result.cover, spec,
                                        modify_values=result.modify_values)
        loads = [i for i in program.prologue if isinstance(i, LoadMr)]
        assert len(loads) == len(result.modify_values)
        folded = [i for i in program.body
                  if isinstance(i, Use) and i.post_modify_mr is not None]
        assert folded
        assert program.overhead_per_iteration == result.total_cost

    def test_simulation_verifies_mr_program(self):
        pattern = pattern_from_offsets(JUMPY)
        spec = AguSpec(1, 1, "mr", n_modify_registers=2)
        result = allocate_with_modify_registers(pattern, spec)
        program = generate_address_code(pattern, result.cover, spec,
                                        modify_values=result.modify_values)
        loop = loop_from_offsets(JUMPY, start=0, n_iterations=12)
        layout = MemoryLayout.contiguous([ArrayDecl("A", length=64)])
        simulation = simulate(program, loop, layout)
        assert simulation.overhead_per_iteration == result.total_cost
        assert simulation.n_accesses_verified == 12 * 6

    def test_too_many_values_rejected(self, jumpy_cover):
        pattern, cover = jumpy_cover
        spec = AguSpec(1, 1, n_modify_registers=1)
        with pytest.raises(CodegenError, match="modify registers"):
            generate_address_code(pattern, cover, spec,
                                  modify_values=(10, -20))

    def test_duplicate_values_rejected(self, jumpy_cover):
        pattern, cover = jumpy_cover
        spec = AguSpec(1, 1, n_modify_registers=4)
        with pytest.raises(CodegenError, match="duplicate"):
            generate_address_code(pattern, cover, spec,
                                  modify_values=(10, 10))

    def test_merge_with_free_deltas_consistent(self, jumpy_cover):
        pattern, _cover = jumpy_cover
        from repro.merging.greedy import best_pair_merge
        fine = PathCover.finest(6)
        merged = best_pair_merge(fine, 1, pattern, 1,
                                 free_deltas=frozenset({10}))
        assert merged.total_cost == cover_cost(
            merged.cover, pattern, 1,
            free_deltas=frozenset({10}))
