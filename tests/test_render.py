"""Tests of the experiment table renderers (shared by CLI and benches)."""

import pytest

from repro.agu.model import AguSpec
from repro.analysis import render
from repro.analysis.experiments import (
    CostModelAblationConfig,
    KernelComparisonConfig,
    MergingAblationConfig,
    ModRegAblationConfig,
    OffsetComparisonConfig,
    PathCoverAblationConfig,
    ReorderAblationConfig,
    StatisticalConfig,
    run_cost_model_ablation,
    run_kernel_comparison,
    run_merging_ablation,
    run_modreg_ablation,
    run_offset_comparison,
    run_path_cover_ablation,
    run_reorder_ablation,
    run_statistical_comparison,
)


@pytest.fixture(scope="module")
def stats_summary():
    return run_statistical_comparison(StatisticalConfig(
        n_values=(10,), m_values=(1,), k_values=(2,),
        patterns_per_config=4, naive_repeats=2))


class TestStatisticalTables:
    def test_main_table(self, stats_summary):
        text = render.statistical_table(stats_summary).render()
        assert "EXP-S1" in text
        assert "reduction" in text
        assert text.count("\n") >= 4  # title + header + rule + 1 row

    @pytest.mark.parametrize("axis", ["n", "m", "k"])
    def test_marginal_tables(self, stats_summary, axis):
        text = render.statistical_marginal_table(stats_summary,
                                                 axis).render()
        assert f"per {axis.upper()}" in text


class TestOtherTables:
    def test_kernel_table(self):
        summary = run_kernel_comparison(KernelComparisonConfig(
            kernel_names=("paper_example",), spec=AguSpec(2, 1),
            simulate_iterations=4))
        text = render.kernel_table(summary).render()
        assert "paper_example" in text
        assert "ovh(base)" in text

    def test_path_cover_table(self):
        summary = run_path_cover_ablation(PathCoverAblationConfig(
            n_values=(8,), m_values=(1,), patterns_per_config=3))
        text = render.path_cover_table(summary).render()
        assert "EXP-A1" in text and "K~" in text

    def test_cost_model_table(self):
        summary = run_cost_model_ablation(CostModelAblationConfig(
            n_values=(10,), m_values=(1,), k_values=(2,),
            patterns_per_config=3))
        text = render.cost_model_table(summary).render()
        assert "EXP-A2" in text

    def test_merging_table(self):
        summary = run_merging_ablation(MergingAblationConfig(
            n_values=(8,), m_values=(1,), k_values=(2,),
            patterns_per_config=3))
        text = render.merging_table(summary).render()
        assert "EXP-A3" in text and "best-pair" in text

    def test_offset_tables(self):
        summary = run_offset_comparison(OffsetComparisonConfig(
            v_values=(5,), length_values=(12,), sequences_per_config=3,
            goa_k_values=(2,)))
        soa_text = render.offset_soa_table(summary).render()
        goa_text = render.offset_goa_table(summary).render()
        assert "Liao" in soa_text
        assert "EXP-O1b" in goa_text

    def test_modreg_table(self):
        summary = run_modreg_ablation(ModRegAblationConfig(
            n_values=(10,), k_values=(2,), mr_values=(0, 2),
            patterns_per_config=3))
        text = render.modreg_table(summary).render()
        assert "EXP-X1" in text and "MRs" in text

    def test_reorder_table(self):
        summary = run_reorder_ablation(ReorderAblationConfig(
            n_values=(8,), k_values=(2,), patterns_per_config=3))
        text = render.reorder_table(summary).render()
        assert "EXP-X2" in text and "reordered" in text
