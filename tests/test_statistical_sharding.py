"""Tests of the sharded EXP-S1 grid: jobs, seeds, streaming, caching."""

from __future__ import annotations

import dataclasses

import pytest

from repro.agu.model import AguSpec
from repro.analysis.experiments import (
    StatisticalConfig,
    StatisticalRow,
    marginalize,
    run_statistical_comparison,
    statistical_grid_jobs,
    statistical_rows_from_results,
)
from repro.batch.cache import JsonFileCache, ShardedDirectoryCache
from repro.batch.digest import job_digest
from repro.batch.engine import BatchCompiler, execute_any
from repro.batch.jobs import (
    NAIVE_PATTERN_STRIDE,
    NAIVE_SEED_STRIDE,
    PATTERN_SEED_STRIDE,
    StatisticalGridJob,
    naive_baseline_seed,
)
from repro.batch.jobs import jobs_from_suite

TINY = StatisticalConfig(n_values=(10, 14), m_values=(1, 2), k_values=(2,),
                         patterns_per_config=5, naive_repeats=3, seed=11)


@pytest.fixture(scope="module")
def tiny_jobs() -> list[StatisticalGridJob]:
    return statistical_grid_jobs(TINY)


@pytest.fixture(scope="module")
def tiny_summary():
    return run_statistical_comparison(TINY)


class TestGridJobs:
    def test_one_job_per_grid_point(self, tiny_jobs):
        assert len(tiny_jobs) == len(TINY.grid())
        assert [(job.n, job.m, job.k) for job in tiny_jobs] == TINY.grid()
        assert len({job.name for job in tiny_jobs}) == len(tiny_jobs)

    def test_digests_are_unique_and_name_free(self, tiny_jobs):
        digests = [job_digest(job) for job in tiny_jobs]
        assert len(set(digests)) == len(digests)
        renamed = dataclasses.replace(tiny_jobs[0], name="other-label")
        assert job_digest(renamed) == digests[0]

    def test_digest_tracks_every_grid_parameter(self, tiny_jobs):
        base = tiny_jobs[0]
        for change in (dict(n=base.n + 1), dict(k=base.k + 1),
                       dict(m=base.m + 1),
                       dict(patterns_per_config=9),
                       dict(naive_repeats=base.naive_repeats + 1),
                       dict(pattern_seed=base.pattern_seed + 1),
                       dict(naive_seed=base.naive_seed + 1),
                       dict(distribution="sweep"),
                       dict(exact_cover_limit=5)):
            assert job_digest(dataclasses.replace(base, **change)) \
                != job_digest(base)

    def test_execute_through_generic_dispatch(self, tiny_jobs):
        result = execute_any(tiny_jobs[0])
        assert result.n_patterns == TINY.patterns_per_config
        assert result.digest == job_digest(tiny_jobs[0])
        assert not result.from_cache


class TestSeedScheme:
    def test_pattern_and_naive_seeds_advance_per_grid_point(self,
                                                            tiny_jobs):
        for grid_index, job in enumerate(tiny_jobs):
            assert job.pattern_seed \
                == TINY.seed + PATTERN_SEED_STRIDE * grid_index
            assert job.naive_seed \
                == TINY.seed + NAIVE_SEED_STRIDE * (grid_index + 1)

    def test_pattern_seeds_never_alias_naive_streams(self, tiny_jobs):
        """A pattern RNG and a merge-order RNG must never share a seed
        (grid point 0's pattern seed used to equal its first naive
        seed)."""
        pattern_seeds = {job.pattern_seed for job in tiny_jobs}
        naive_seeds = {
            naive_baseline_seed(job.naive_seed, pattern_index, repeat)
            for job in tiny_jobs
            for pattern_index in range(job.patterns_per_config)
            for repeat in range(job.naive_repeats)}
        assert not pattern_seeds & naive_seeds

    def test_naive_streams_are_disjoint_across_grid_points(self,
                                                           tiny_jobs):
        """The PR-2 seeding fix: no two grid points may ever hand the
        naive baseline the same merge-order seed."""
        streams = []
        for job in tiny_jobs:
            streams.append({
                naive_baseline_seed(job.naive_seed, pattern_index, repeat)
                for pattern_index in range(job.patterns_per_config)
                for repeat in range(job.naive_repeats)})
        for i, first in enumerate(streams):
            for second in streams[i + 1:]:
                assert not first & second

    def test_naive_streams_are_injective_within_a_point(self, tiny_jobs):
        job = tiny_jobs[0]
        seeds = [naive_baseline_seed(job.naive_seed, pattern_index, repeat)
                 for pattern_index in range(147)
                 for repeat in range(NAIVE_PATTERN_STRIDE // 147)]
        assert len(seeds) == len(set(seeds))
        assert max(seeds) - job.naive_seed < NAIVE_SEED_STRIDE

    def test_naive_baselines_differ_across_grid_index(self, tiny_jobs):
        """Same patterns, different grid position: the naive baseline
        must resample instead of replaying the other point's orders."""
        base = dataclasses.replace(tiny_jobs[0], n=20, k=2, m=1,
                                   patterns_per_config=8)
        shifted = dataclasses.replace(
            base, naive_seed=base.naive_seed + NAIVE_SEED_STRIDE)
        first, second = base.execute(), shifted.execute()
        # Identical pattern family => identical optimized side...
        assert first.mean_optimized == second.mean_optimized
        assert first.mean_k_tilde == second.mean_k_tilde
        # ...but independent naive merge orders.
        assert first.mean_naive != second.mean_naive


class TestShardedStatisticalComparison:
    def test_rows_bit_identical_across_workers_and_cache(self, tmp_path,
                                                         tiny_summary):
        """The PR-2 acceptance criterion: workers=1, workers=4, and a
        fully cached re-run agree row-for-row, bit-for-bit."""
        cache = JsonFileCache(tmp_path / "s1.json")
        parallel = run_statistical_comparison(TINY, n_workers=4,
                                              cache=cache)
        cached = run_statistical_comparison(
            TINY, n_workers=4, cache=JsonFileCache(cache.path))
        assert parallel.rows == tiny_summary.rows
        assert cached.rows == tiny_summary.rows
        assert cached.average_reduction_pct \
            == tiny_summary.average_reduction_pct
        assert cached.overall_reduction_pct \
            == tiny_summary.overall_reduction_pct
        # The warm run recompiles nothing.
        assert parallel.n_points_compiled == len(tiny_summary.rows)
        assert cached.n_points_compiled == 0
        assert cached.n_points_cached == len(tiny_summary.rows)

    def test_matches_direct_sequential_execution(self, tiny_jobs,
                                                 tiny_summary):
        """Differential vs the engine-free seed path: executing every
        grid job inline reproduces the sharded summary exactly."""
        direct = statistical_rows_from_results(
            [job.execute() for job in tiny_jobs])
        assert direct == tiny_summary.rows

    def test_progress_callback_streams_every_point(self):
        seen = []
        run_statistical_comparison(
            TINY, progress=lambda done, total, result:
            seen.append((done, total, result.name)))
        assert [done for done, _, _ in seen] \
            == list(range(1, len(TINY.grid()) + 1))
        assert all(total == len(TINY.grid()) for _, total, _ in seen)
        assert len({name for _, _, name in seen}) == len(TINY.grid())

    def test_sharded_directory_cache_backend(self, tmp_path):
        store = ShardedDirectoryCache(tmp_path / "grid")
        cold = run_statistical_comparison(TINY, cache=store)
        warm = run_statistical_comparison(
            TINY, cache=ShardedDirectoryCache(store.root))
        assert warm.rows == cold.rows
        assert warm.n_points_compiled == 0
        assert len(store) == len(TINY.grid())

    def test_partial_cache_only_computes_whats_missing(self, tmp_path,
                                                       tiny_jobs):
        store = ShardedDirectoryCache(tmp_path / "grid")
        compiler = BatchCompiler(cache=store)
        list(compiler.as_completed(tiny_jobs[:2]))
        summary = run_statistical_comparison(TINY, cache=store)
        assert summary.n_points_cached == 2
        assert summary.n_points_compiled == len(tiny_jobs) - 2

    def test_marginalize_accepts_grid_results(self, tiny_jobs,
                                              tiny_summary):
        results = [job.execute() for job in tiny_jobs]
        by_m = marginalize(results, "m")
        assert by_m == marginalize(tiny_summary, "m")
        assert all(isinstance(row, StatisticalRow) for row in by_m)


class TestStreamingEngine:
    SPEC = AguSpec(4, 1)

    def test_as_completed_covers_every_slot_once(self):
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        compiler = BatchCompiler(n_workers=2)
        streamed = dict(compiler.as_completed(jobs))
        assert sorted(streamed) == list(range(len(jobs)))
        assert {result.name for result in streamed.values()} \
            == {job.name for job in jobs}

    def test_as_completed_streams_cache_hits(self):
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        compiler = BatchCompiler()
        list(compiler.as_completed(jobs))
        again = dict(compiler.as_completed(jobs))
        assert all(result.from_cache for result in again.values())

    def test_run_iter_preserves_job_order(self):
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        compiler = BatchCompiler(n_workers=2)
        names = [result.name for result in compiler.run_iter(jobs)]
        assert names == [job.name for job in jobs]

    def test_streaming_matches_compile(self):
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        streamed = list(BatchCompiler(n_workers=2).run_iter(jobs))
        compiled = BatchCompiler().compile(jobs).results
        assert [(r.name, r.total_cost, r.k_tilde) for r in streamed] \
            == [(r.name, r.total_cost, r.k_tilde) for r in compiled]

    def test_duplicate_digests_compute_once(self):
        job = jobs_from_suite("core8", self.SPEC, n_iterations=4)[0]
        twin = dataclasses.replace(job, name="twin")
        compiler = BatchCompiler()
        results = dict(compiler.as_completed([job, twin]))
        assert not results[0].from_cache
        assert results[1].from_cache
        assert results[1].name == "twin"
        assert results[1].total_cost == results[0].total_cost

    def test_interrupted_stream_keeps_partial_progress(self):
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        compiler = BatchCompiler()
        stream = compiler.as_completed(jobs)
        next(stream)
        stream.close()  # abandon mid-batch
        report = compiler.compile(jobs)
        assert report.n_cache_hits >= 1
        assert report.n_compiled < len(jobs)
