"""Unit tests for the naive merging baselines."""

import pytest

from repro.errors import AllocationError
from repro.ir.builder import pattern_from_offsets
from repro.merging.cost import cover_cost
from repro.merging.naive import NAIVE_STRATEGIES, naive_merge
from repro.pathcover.paths import PathCover

from conftest import random_offsets


class TestStrategies:
    def test_all_strategies_reach_the_limit(self, paper_pattern):
        cover = PathCover.finest(7)
        for strategy in NAIVE_STRATEGIES:
            result = naive_merge(cover, 2, paper_pattern, 1,
                                 strategy=strategy, seed=1)
            assert result.n_registers == 2
            assert result.strategy == f"naive/{strategy}"

    def test_random_is_seed_deterministic(self, paper_pattern):
        cover = PathCover.finest(7)
        a = naive_merge(cover, 2, paper_pattern, 1, seed=42)
        b = naive_merge(cover, 2, paper_pattern, 1, seed=42)
        assert a.cover == b.cover

    def test_different_seeds_can_differ(self, paper_pattern):
        cover = PathCover.finest(7)
        results = {naive_merge(cover, 2, paper_pattern, 1,
                               seed=seed).cover for seed in range(8)}
        assert len(results) > 1

    def test_first_pair_merges_leading_paths(self, paper_pattern):
        cover = PathCover.finest(7)
        result = naive_merge(cover, 6, paper_pattern, 1,
                             strategy="first_pair")
        merged = result.steps[0]
        assert merged.left.first == 0
        assert merged.right.first == 1

    def test_last_pair_merges_trailing_paths(self, paper_pattern):
        cover = PathCover.finest(7)
        result = naive_merge(cover, 6, paper_pattern, 1,
                             strategy="last_pair")
        merged = result.steps[0]
        assert merged.left.first == 5
        assert merged.right.first == 6


class TestConsistency:
    def test_cost_matches_cover(self, rng):
        for _ in range(20):
            offsets = random_offsets(rng, rng.randint(3, 10))
            pattern = pattern_from_offsets(offsets)
            cover = PathCover.finest(len(offsets))
            result = naive_merge(cover, 2, pattern, 1, seed=7)
            assert result.total_cost == cover_cost(result.cover, pattern, 1)

    def test_partition_preserved(self, rng):
        offsets = random_offsets(rng, 9)
        pattern = pattern_from_offsets(offsets)
        result = naive_merge(PathCover.finest(9), 3, pattern, 1, seed=0)
        assert result.cover.n_accesses == 9
        assert sorted(p for path in result.cover for p in path) == \
            list(range(9))


class TestValidation:
    def test_unknown_strategy_rejected(self, paper_pattern):
        with pytest.raises(AllocationError, match="unknown naive strategy"):
            naive_merge(PathCover.finest(7), 2, paper_pattern, 1,
                        strategy="clever")

    def test_zero_registers_rejected(self, paper_pattern):
        with pytest.raises(AllocationError):
            naive_merge(PathCover.finest(7), 0, paper_pattern, 1)

    def test_mismatched_cover_rejected(self, paper_pattern):
        with pytest.raises(AllocationError):
            naive_merge(PathCover.finest(3), 2, paper_pattern, 1)
