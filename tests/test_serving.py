"""Tests of compile-as-a-service: the serve protocol, admission
control, micro-batching, the warm cache tier, and the bit-identity of
served output against direct batch compilation."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.agu.model import AguSpec
from repro.batch.cache import InMemoryLRUCache, TieredCache
from repro.batch.engine import (
    BatchCompiler,
    Executor,
    JobFailure,
    execute_any,
)
from repro.batch.jobs import BatchJob
from repro.batch.serving import (
    CompileService,
    ServeClient,
    ServerBusyError,
)
from repro.batch.service import recv_frame, send_frame
from repro.core.pipeline import compile_kernel
from repro.errors import BatchError
from repro.workloads.kernels import get_kernel

SPEC = AguSpec(4, 1)

#: Small distinct sources so tests control digest identity precisely.
SOURCES = {
    "saxpy": get_kernel("saxpy").source,
    "fir8": get_kernel("fir8").source,
    "energy": get_kernel("energy").source,
    "vector_add": get_kernel("vector_add").source,
    "dot_product": get_kernel("dot_product").source,
}


def payload_modulo_timing(result) -> dict:
    """A JobResult payload with the only nondeterministic field
    (wall-clock) removed -- the bit-identity comparison key."""
    payload = result.payload()
    payload.pop("wall_seconds")
    return payload


@pytest.fixture
def service():
    with CompileService(batch_window=0.01) as running:
        yield running


@pytest.fixture
def client(service):
    with ServeClient(service.endpoint, timeout=30.0) as connected:
        yield connected


class _Gate(Executor):
    """Test double executor: optionally blocks inside ``run`` (to pin
    the dispatcher while tests stage the queue) and fails jobs whose
    name starts with ``poison`` (to exercise failure isolation)."""

    def __init__(self):
        self.hold = threading.Event()
        self.entered = threading.Event()
        self.release = threading.Event()

    def run(self, jobs):
        self.entered.set()
        if self.hold.is_set():
            assert self.release.wait(timeout=30.0)
        return _GateStream(jobs)


class _GateStream:
    def __init__(self, jobs):
        self._jobs = list(jobs)

    def __iter__(self):
        for index, job in enumerate(self._jobs):
            if job.name.startswith("poison"):
                raise JobFailure(index, RuntimeError("injected failure"))
            yield index, execute_any(job)

    def shutdown(self):
        return {}


def compile_request(kernel: str, **extra) -> dict:
    request = {"op": "compile", "source": SOURCES[kernel],
               "name": kernel}
    request.update(extra)
    return request


class TestServeProtocol:
    def test_ping_and_stats(self, service, client):
        assert client.ping()
        stats = client.server_stats()
        assert stats["requests"] == 0
        assert stats["cache"] == {"hits": 0, "misses": 0, "stores": 0}

    def test_cold_then_warm_round_trip(self, service, client):
        cold = client.compile(SOURCES["saxpy"], name="saxpy")
        assert not cold.cached
        assert not cold.result.from_cache
        warm = client.compile(SOURCES["saxpy"], name="saxpy")
        assert warm.cached
        assert warm.result.from_cache
        assert warm.digest == cold.digest
        # Warm answers replay the stored payload bit-for-bit.
        assert warm.result.payload() == cold.result.payload()
        stats = client.server_stats()
        assert stats["served_warm"] == 1
        assert stats["compiled"] == 1

    def test_library_kernel_request(self, service, client):
        by_name = client.compile(kernel="fir8")
        by_source = client.compile(SOURCES["fir8"], name="fir8")
        assert by_source.digest == by_name.digest
        assert by_source.cached  # same digest: second request was warm

    def test_served_result_is_bit_identical_to_direct_batch(
            self, service, client):
        job = BatchJob(name="saxpy", spec=SPEC,
                       source=SOURCES["saxpy"])
        direct = BatchCompiler().compile([job]).results[0]
        served = client.compile(SOURCES["saxpy"], name="saxpy").result
        assert payload_modulo_timing(served) \
            == payload_modulo_timing(direct)

    def test_spec_and_execution_options_reach_the_job(self, service,
                                                      client):
        wide = client.compile(SOURCES["fir8"], name="fir8",
                              registers=6, modify_range=2,
                              iterations=16, baseline=True)
        job = BatchJob(name="fir8", spec=AguSpec(6, 2),
                       source=SOURCES["fir8"], n_iterations=16,
                       include_baseline=True)
        direct = BatchCompiler().compile([job]).results[0]
        assert payload_modulo_timing(wide.result) \
            == payload_modulo_timing(direct)
        assert wide.result.baseline_overhead is not None

    def test_listing_is_bit_identical_to_compile_kernel(self, service,
                                                        client):
        answer = client.compile(SOURCES["energy"], name="energy",
                                listing=True)
        direct = compile_kernel(SOURCES["energy"], SPEC,
                                run_simulation=False, name="energy")
        assert answer.listing == direct.listing
        # And again warm: the listing is cached next to the result.
        again = client.compile(SOURCES["energy"], name="energy",
                               listing=True)
        assert again.cached
        assert again.listing == direct.listing

    def test_no_listing_unless_asked(self, service, client):
        assert client.compile(SOURCES["saxpy"]).listing is None

    def test_malformed_requests_answer_errors_on_a_live_connection(
            self, service):
        with socket.create_connection(service.address, timeout=5) as sock:
            send_frame(sock, {"op": "frobnicate"})
            assert "unknown op" in recv_frame(sock)["error"]
            send_frame(sock, {"op": "compile"})  # neither source/kernel
            assert "exactly one" in recv_frame(sock)["error"]
            send_frame(sock, {"op": "compile", "source": "x",
                              "kernel": "fir8"})  # both
            assert recv_frame(sock)["ok"] is False
            send_frame(sock, {"op": "compile", "kernel": "no-such"})
            assert "unknown kernel" in recv_frame(sock)["error"]
            send_frame(sock, {"op": "compile",
                              "source": "not a kernel ("})
            assert recv_frame(sock)["ok"] is False
            send_frame(sock, {"op": "compile", "source": "x",
                              "registers": "four"})
            assert "integer" in recv_frame(sock)["error"]
            # ...and the connection is still alive afterwards:
            send_frame(sock, {"op": "ping"})
            assert recv_frame(sock)["ok"] is True

    def test_request_errors_raise_batch_error_in_the_client(
            self, service, client):
        with pytest.raises(BatchError, match="unknown kernel"):
            client.compile(kernel="no-such-kernel")
        with pytest.raises(BatchError, match="rejected"):
            client.compile("not a kernel (")

    def test_idle_connection_is_closed_after_the_timeout(self):
        with CompileService(idle_timeout=0.2) as service:
            with socket.create_connection(service.address,
                                          timeout=5) as sock:
                send_frame(sock, {"op": "ping"})
                assert recv_frame(sock)["ok"] is True
                sock.settimeout(5.0)
                assert sock.recv(1) == b""  # server-side close

    def test_concurrent_clients_get_identical_answers(self, service):
        answers: list = []
        errors: list = []

        def one_request():
            try:
                with ServeClient(service.endpoint,
                                 busy_retries=5) as mine:
                    answers.append(
                        mine.compile(SOURCES["saxpy"], name="saxpy"))
            # The thread must capture, not die: pytest cannot see
            # exceptions raised off the main thread.
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=one_request)
                   for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        assert len(answers) == 6
        digests = {answer.digest for answer in answers}
        assert len(digests) == 1
        payloads = [answer.result.payload() for answer in answers]
        assert all(payload == payloads[0] for payload in payloads)

    def test_rejects_invalid_configuration(self):
        for kwargs in ({"batch_window": -0.1}, {"max_batch": 0},
                       {"max_pending": 0}, {"idle_timeout": 0},
                       {"idle_timeout": -1.0}):
            with pytest.raises(BatchError):
                CompileService(**kwargs)
        for kwargs in ({"timeout": 0}, {"pool_size": 0},
                       {"busy_retries": -1}, {"busy_backoff": -0.1}):
            with pytest.raises(BatchError):
                ServeClient("tcp://127.0.0.1:8743", **kwargs)


class TestAdmissionControl:
    def staged_service(self, gate, **kwargs):
        kwargs.setdefault("executor", gate)
        return CompileService(**kwargs)

    def wait_for_queue(self, service, depth: int) -> None:
        deadline = time.monotonic() + 10.0
        while service._queue.qsize() < depth:
            assert time.monotonic() < deadline, "queue never filled"
            time.sleep(0.005)

    def test_full_queue_answers_busy_instead_of_queueing(self):
        gate = _Gate()
        gate.hold.set()
        with self.staged_service(gate, max_pending=1,
                                 batch_window=0.0) as service:
            responses: list[dict] = []
            # First request: pulled by the dispatcher, which then
            # blocks inside the executor -- the queue is empty again.
            blocker = threading.Thread(
                target=lambda: responses.append(service.handle_request(
                    compile_request("saxpy"))))
            blocker.start()
            assert gate.entered.wait(timeout=10.0)
            # Second request fills the (size-1) queue...
            queued = threading.Thread(
                target=lambda: responses.append(service.handle_request(
                    compile_request("fir8"))))
            queued.start()
            self.wait_for_queue(service, 1)
            # ...so the third is rejected with an explicit busy frame,
            # synchronously, instead of growing the backlog.
            busy = service.handle_request(compile_request("energy"))
            assert busy == {"ok": False, "busy": True,
                            "error": "server busy: 1 compile(s) "
                                     "already in flight"}
            gate.hold.clear()
            gate.release.set()
            blocker.join(timeout=30.0)
            queued.join(timeout=30.0)
            assert [r["ok"] for r in responses] == [True, True]
            assert service.stats.busy_rejections == 1

    def test_busy_client_retries_then_raises_server_busy_error(self):
        gate = _Gate()
        gate.hold.set()
        with self.staged_service(gate, max_pending=1,
                                 batch_window=0.0) as service:
            threads = [threading.Thread(
                target=service.handle_request,
                args=(compile_request(kernel),))
                for kernel in ("saxpy", "fir8")]
            threads[0].start()
            assert gate.entered.wait(timeout=10.0)
            threads[1].start()
            self.wait_for_queue(service, 1)
            impatient = ServeClient(service.endpoint, busy_retries=2,
                                    busy_backoff=0.01)
            with pytest.raises(ServerBusyError, match="at capacity"):
                impatient.compile(SOURCES["energy"], name="energy")
            # Three attempts: the original and two retries.
            assert service.stats.busy_rejections == 3
            gate.hold.clear()
            gate.release.set()
            for thread in threads:
                thread.join(timeout=30.0)

    def test_warm_requests_bypass_admission_entirely(self):
        """A cache hit is served even while the queue is saturated:
        the warm path never competes for in-flight slots."""
        gate = _Gate()
        with self.staged_service(gate, max_pending=1,
                                 batch_window=0.0) as service:
            warm = service.handle_request(compile_request("saxpy"))
            assert warm["ok"] is True
            gate.hold.set()
            gate.entered.clear()
            gate.release.clear()
            blocker = threading.Thread(
                target=service.handle_request,
                args=(compile_request("fir8"),))
            blocker.start()
            assert gate.entered.wait(timeout=10.0)
            queued = threading.Thread(
                target=service.handle_request,
                args=(compile_request("energy"),))
            queued.start()
            self.wait_for_queue(service, 1)
            again = service.handle_request(compile_request("saxpy"))
            assert again["ok"] is True
            assert again["cached"] is True
            gate.hold.clear()
            gate.release.set()
            blocker.join(timeout=30.0)
            queued.join(timeout=30.0)


class TestMicroBatching:
    def test_staged_requests_coalesce_into_one_engine_batch(self):
        gate = _Gate()
        gate.hold.set()
        with CompileService(executor=gate, batch_window=0.25,
                            max_batch=8) as service:
            responses: list[dict] = []

            def request(kernel: str) -> None:
                responses.append(
                    service.handle_request(compile_request(kernel)))

            blocker = threading.Thread(target=request, args=("saxpy",))
            blocker.start()
            assert gate.entered.wait(timeout=10.0)
            followers = [threading.Thread(target=request, args=(k,))
                         for k in ("fir8", "energy", "vector_add",
                                   "dot_product")]
            for thread in followers:
                thread.start()
            deadline = time.monotonic() + 10.0
            while service._queue.qsize() < 4:
                assert time.monotonic() < deadline
                time.sleep(0.005)
            gate.hold.clear()
            gate.release.set()
            for thread in [blocker, *followers]:
                thread.join(timeout=60.0)
            assert [r["ok"] for r in responses] == [True] * 5
            # 5 requests, 2 engine batches: the blocker alone, then
            # the 4 staged requests coalesced into one batch.
            assert service.stats.requests == 5
            assert service.stats.batches == 2
            assert service.stats.compiled == 5

    def test_failed_job_only_fails_its_own_requests(self):
        """Failure isolation inside a micro-batch: the culprit's
        request gets the error frame; batch-mates are rerun and
        resolve from the engine's salvage cache."""
        gate = _Gate()
        gate.hold.set()
        with CompileService(executor=gate, batch_window=0.25,
                            max_batch=8) as service:
            responses: dict[str, dict] = {}

            def request(label: str, message: dict) -> None:
                responses[label] = service.handle_request(message)

            blocker = threading.Thread(
                target=request,
                args=("blocker", compile_request("saxpy")))
            blocker.start()
            assert gate.entered.wait(timeout=10.0)
            # Stage strictly in order so the poisoned job is first in
            # the coalesced batch (nothing salvages ahead of it).
            staged = []
            for depth, (label, message) in enumerate(
                    [("poison", compile_request(
                        "fir8", name="poison-fir8")),
                     ("good-1", compile_request("energy")),
                     ("good-2", compile_request("vector_add"))],
                    start=1):
                thread = threading.Thread(target=request,
                                          args=(label, message))
                thread.start()
                deadline = time.monotonic() + 10.0
                while service._queue.qsize() < depth:
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                staged.append(thread)
            gate.hold.clear()
            gate.release.set()
            for thread in [blocker, *staged]:
                thread.join(timeout=60.0)
            assert responses["blocker"]["ok"] is True
            assert responses["poison"]["ok"] is False
            assert "injected failure" in responses["poison"]["error"]
            assert responses["good-1"]["ok"] is True
            assert responses["good-2"]["ok"] is True
            assert service.stats.failures == 1
            # Still 2 batches: the culprit's removal reruns the batch,
            # it does not count a new one.
            assert service.stats.batches == 2

    def test_shutdown_drains_admitted_requests_and_rejects_new_ones(
            self):
        gate = _Gate()
        gate.hold.set()
        service = CompileService(executor=gate, batch_window=0.0,
                                 max_pending=4).start()
        responses: list[dict] = []
        blocker = threading.Thread(
            target=lambda: responses.append(service.handle_request(
                compile_request("saxpy"))))
        blocker.start()
        assert gate.entered.wait(timeout=10.0)
        queued = threading.Thread(
            target=lambda: responses.append(service.handle_request(
                compile_request("fir8"))))
        queued.start()
        deadline = time.monotonic() + 10.0
        while service._queue.qsize() < 1:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        shutter = threading.Thread(target=service.shutdown)
        shutter.start()
        time.sleep(0.1)
        gate.hold.clear()
        gate.release.set()
        for thread in (blocker, queued, shutter):
            thread.join(timeout=30.0)
        assert len(responses) == 2
        # Admission is a promise: both the in-flight request and the
        # queued one complete (the bounded queue keeps the drain
        # bounded); no handler thread is left waiting.
        assert [r["ok"] for r in responses] == [True, True]
        # New work after shutdown is refused outright.
        late = service.handle_request(compile_request("energy"))
        assert late["ok"] is False
        assert "shutting down" in late["error"]


class CountingBackend:
    """A backend that counts how often the service actually reaches
    past the warm tier."""

    def __init__(self):
        self.inner = InMemoryLRUCache()
        self.lookups = 0
        self.stores = 0

    def get(self, digest):
        """The stored payload (counting the backend round trip)."""
        self.lookups += 1
        return self.inner.get(digest)

    def put(self, digest, payload):
        """Store one payload (counting the backend write)."""
        self.stores += 1
        self.inner.put(digest, payload)


class TestWarmTier:
    def test_hot_kernels_never_touch_the_backend(self):
        backend = CountingBackend()
        with CompileService(backend, batch_window=0.0) as service:
            client = ServeClient(service.endpoint)
            client.compile(SOURCES["saxpy"], name="saxpy")
            cold_lookups = backend.lookups
            assert cold_lookups > 0  # the cold path did consult it
            for _ in range(5):
                assert client.compile(SOURCES["saxpy"],
                                      name="saxpy").cached
            assert backend.lookups == cold_lookups
            assert service.stats.served_warm == 5

    def test_backend_entries_are_promoted_not_recompiled(self):
        """A restart with the same backing store serves warm from the
        store: zero recompiles, one backend fetch, then in-process."""
        backend = CountingBackend()
        with CompileService(backend, batch_window=0.0) as first:
            ServeClient(first.endpoint).compile(SOURCES["saxpy"],
                                                name="saxpy")
        with CompileService(backend, batch_window=0.0) as second:
            client = ServeClient(second.endpoint)
            answer = client.compile(SOURCES["saxpy"], name="saxpy")
            assert answer.cached
            promoted_lookups = backend.lookups
            assert client.compile(SOURCES["saxpy"], name="saxpy").cached
            assert backend.lookups == promoted_lookups
            assert second.stats.compiled == 0


class TestTieredCache:
    def test_get_promotes_backend_entries_into_the_warm_tier(self):
        backend = CountingBackend()
        backend.inner.put("k", {"v": 1})
        tiered = TieredCache(backend)
        assert tiered.get("k") == {"v": 1}
        assert backend.lookups == 1
        assert tiered.get("k") == {"v": 1}  # warm now
        assert backend.lookups == 1
        assert tiered.stats.hits == 2

    def test_get_many_splits_between_tiers(self):
        backend = CountingBackend()
        backend.inner.put("cold", {"v": 1})
        tiered = TieredCache(backend)
        tiered.put("warm", {"v": 2})
        found = tiered.get_many(["warm", "cold", "absent", "warm"])
        assert found == {"warm": {"v": 2}, "cold": {"v": 1}}
        assert tiered.stats.hits == 2  # duplicates deduped first
        assert tiered.stats.misses == 1
        assert tiered.get_many(["cold"]) == {"cold": {"v": 1}}
        assert backend.lookups == 2  # "cold" + "absent" only, once

    def test_writes_reach_both_tiers(self):
        backend = CountingBackend()
        tiered = TieredCache(backend)
        tiered.put("a", {"v": 1})
        tiered.put_many({"b": {"v": 2}, "c": {"v": 3}})
        assert backend.stores == 3
        assert backend.inner.get("b") == {"v": 2}
        assert tiered.stats.stores == 3
        assert len(tiered) == 3

    def test_eviction_falls_through_to_the_backend(self):
        backend = CountingBackend()
        tiered = TieredCache(backend, capacity=2)
        for index in range(3):
            tiered.put(f"k{index}", {"v": index})
        assert len(tiered) == 2  # k0 evicted from the warm tier...
        assert tiered.get("k0") == {"v": 0}  # ...but not lost
        assert backend.lookups == 1

    def test_standalone_without_a_backend(self):
        tiered = TieredCache()
        assert tiered.get("k") is None
        tiered.put("k", {"v": 1})
        assert tiered.get("k") == {"v": 1}
        assert tiered.get_many(["k", "absent"]) == {"k": {"v": 1}}
        assert (tiered.stats.hits, tiered.stats.misses,
                tiered.stats.stores) == (2, 2, 1)

    def test_refuses_to_front_another_tier(self):
        with pytest.raises(BatchError, match="cannot front"):
            TieredCache(TieredCache())

    def test_is_a_valid_engine_cache(self):
        """The tier drops into BatchCompiler unchanged: cold compile,
        then a different compiler on the same backend is all hits."""
        backend = InMemoryLRUCache()
        job = BatchJob(name="saxpy", spec=SPEC,
                       source=SOURCES["saxpy"])
        cold = BatchCompiler(cache=TieredCache(backend)).compile([job])
        assert cold.n_compiled == 1
        warm = BatchCompiler(cache=TieredCache(backend)).compile([job])
        assert warm.n_cache_hits == 1
        assert payload_modulo_timing(warm.results[0]) \
            == payload_modulo_timing(cold.results[0])
