"""Unit tests for the memory layout model."""

import pytest

from repro.errors import LayoutError
from repro.ir.expr import AffineExpr
from repro.ir.layout import ArrayPlacement, MemoryLayout
from repro.ir.parser import parse_kernel
from repro.ir.types import ArrayAccess, ArrayDecl


class TestContiguous:
    def test_packs_back_to_back(self):
        layout = MemoryLayout.contiguous(
            [ArrayDecl("a", length=10), ArrayDecl("b", length=5)])
        assert layout.base("a") == 0
        assert layout.base("b") == 10

    def test_origin_and_gap(self):
        layout = MemoryLayout.contiguous(
            [ArrayDecl("a", length=10), ArrayDecl("b", length=5)],
            origin=100, gap=3)
        assert layout.base("a") == 100
        assert layout.base("b") == 113

    def test_unknown_length_uses_default(self):
        layout = MemoryLayout.contiguous([ArrayDecl("a"), ArrayDecl("b")])
        assert layout.base("b") == MemoryLayout.DEFAULT_LENGTH

    def test_element_size_scales_footprint(self):
        layout = MemoryLayout.contiguous(
            [ArrayDecl("a", element_size=2, length=4), ArrayDecl("b")])
        assert layout.base("b") == 8


class TestExplicit:
    def test_explicit_bases(self):
        layout = MemoryLayout.explicit(
            {"a": 50, "b": 0},
            [ArrayDecl("a", length=4), ArrayDecl("b", length=4)])
        assert layout.base("a") == 50
        assert layout.base("b") == 0

    def test_missing_base_rejected(self):
        with pytest.raises(LayoutError, match="no base address"):
            MemoryLayout.explicit({"a": 0}, [ArrayDecl("a"), ArrayDecl("b")])

    def test_undeclared_base_rejected(self):
        with pytest.raises(LayoutError, match="undeclared"):
            MemoryLayout.explicit({"a": 0, "zz": 8}, [ArrayDecl("a")])

    def test_overlap_rejected(self):
        with pytest.raises(LayoutError, match="overlap"):
            MemoryLayout.explicit(
                {"a": 0, "b": 3},
                [ArrayDecl("a", length=8), ArrayDecl("b", length=8)])

    def test_duplicate_placement_rejected(self):
        with pytest.raises(LayoutError, match="twice"):
            MemoryLayout([ArrayPlacement(ArrayDecl("a"), 0),
                          ArrayPlacement(ArrayDecl("a"), 10_000)])

    def test_negative_base_rejected(self):
        with pytest.raises(LayoutError, match="negative"):
            MemoryLayout([ArrayPlacement(ArrayDecl("a"), -4)])


class TestAddressing:
    def test_address_of(self):
        layout = MemoryLayout.contiguous([ArrayDecl("a", length=16)],
                                         origin=10)
        access = ArrayAccess("a", AffineExpr(1, 2))
        assert layout.address_of(access, 5) == 10 + 7

    def test_address_of_scaled_elements(self):
        layout = MemoryLayout.contiguous(
            [ArrayDecl("a", element_size=2, length=16)])
        access = ArrayAccess("a", AffineExpr(1, 0))
        assert layout.address_of(access, 3) == 6

    def test_unplaced_array_rejected(self):
        layout = MemoryLayout.contiguous([ArrayDecl("a")])
        with pytest.raises(LayoutError, match="not placed"):
            layout.base("zzz")

    def test_contains_and_arrays(self):
        layout = MemoryLayout.contiguous([ArrayDecl("a"), ArrayDecl("b")])
        assert "a" in layout and "b" in layout and "c" not in layout
        assert layout.arrays() == ("a", "b")

    def test_for_kernel(self):
        kernel = parse_kernel(
            "int x[8], y[8]; for (i = 0; i < 4; i++) { y[i] = x[i]; }")
        layout = MemoryLayout.for_kernel(kernel, gap=2)
        assert layout.base("x") == 0
        assert layout.base("y") == 10
