"""Unit tests for address code generation."""

import pytest

from repro.agu.codegen import (
    generate_address_code,
    generate_unoptimized_code,
)
from repro.agu.isa import Modify, PointTo, Use
from repro.agu.listing import program_listing
from repro.agu.model import AguSpec
from repro.errors import CodegenError
from repro.ir.builder import LoopBuilder, pattern_from_offsets
from repro.merging.cost import cover_cost
from repro.merging.greedy import best_pair_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.paths import PathCover

from conftest import random_offsets


class TestStructure:
    def test_one_use_per_access_in_order(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        program = generate_address_code(paper_pattern, cover, AguSpec(3, 1))
        uses = program.body_uses()
        assert [use.position for use in uses] == list(range(7))

    def test_prologue_points_each_register(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        program = generate_address_code(paper_pattern, cover, AguSpec(3, 1))
        assert len(program.prologue) == cover.n_paths
        assert all(isinstance(instr, PointTo)
                   for instr in program.prologue)
        assert program.prologue_cost == cover.n_paths

    def test_zero_cost_cover_emits_no_overhead(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        program = generate_address_code(paper_pattern, cover, AguSpec(3, 1))
        assert program.overhead_per_iteration == 0
        assert all(isinstance(instr, Use) for instr in program.body)

    def test_overhead_equals_model_cost(self, rng):
        for _ in range(25):
            offsets = random_offsets(rng, rng.randint(2, 12))
            pattern = pattern_from_offsets(offsets)
            k = rng.randint(1, 3)
            cover = minimum_zero_cost_cover(pattern, 1).cover
            merged = best_pair_merge(cover, k, pattern, 1)
            program = generate_address_code(pattern, merged.cover,
                                            AguSpec(k, 1))
            assert program.overhead_per_iteration == \
                cover_cost(merged.cover, pattern, 1)

    def test_cross_array_transition_uses_pointto(self):
        pattern = (LoopBuilder().read("x", 0).read("y", 0)
                   .build_pattern())
        cover = PathCover.from_lists([[0, 1]], 2)
        program = generate_address_code(pattern, cover, AguSpec(1, 1))
        kinds = [type(instr) for instr in program.body]
        assert kinds == [Use, PointTo, Use, PointTo]

    def test_long_jump_uses_modify(self):
        pattern = pattern_from_offsets([0, 5, 1])
        cover = PathCover.from_lists([[0, 1, 2]], 3)
        program = generate_address_code(pattern, cover, AguSpec(1, 1))
        modifies = [instr for instr in program.body
                    if isinstance(instr, Modify)]
        # 0->5 (+5) and 5->1 (-4) are explicit; wrap 1 -> 0+1 is free.
        assert [instr.delta for instr in modifies] == [5, -4]

    def test_wrap_retarget_absorbs_loop_step(self):
        pattern = (LoopBuilder(step=2).read("x", 0).read("y", 0)
                   .build_pattern())
        cover = PathCover.from_lists([[0, 1]], 2)
        program = generate_address_code(pattern, cover, AguSpec(1, 1))
        wrap_pointto = program.body[-1]
        assert isinstance(wrap_pointto, PointTo)
        assert wrap_pointto.array == "x"
        # Evaluated at the current i, must hit x[i+2] = next iteration.
        assert wrap_pointto.offset == 2


class TestValidation:
    def test_too_many_paths_rejected(self, paper_pattern):
        cover = PathCover.finest(7)
        with pytest.raises(CodegenError, match="only"):
            generate_address_code(paper_pattern, cover, AguSpec(2, 1))

    def test_mismatched_cover_rejected(self, paper_pattern):
        with pytest.raises(CodegenError):
            generate_address_code(paper_pattern, PathCover.finest(3),
                                  AguSpec(8, 1))


class TestBaseline:
    def test_baseline_overhead_is_n(self, paper_pattern):
        program = generate_unoptimized_code(paper_pattern, AguSpec(1, 1))
        assert program.overhead_per_iteration == len(paper_pattern)

    def test_baseline_empty_pattern(self):
        program = generate_unoptimized_code(pattern_from_offsets([]),
                                            AguSpec(1, 1))
        assert program.overhead_per_iteration == 0


class TestListing:
    def test_listing_contains_key_lines(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        merged = best_pair_merge(cover, 2, paper_pattern, 1)
        program = generate_address_code(paper_pattern, merged.cover,
                                        AguSpec(2, 1))
        text = program_listing(program, title="example")
        assert "; example" in text
        assert "prologue" in text
        assert "USE" in text
        assert "AR0" in text and "AR1" in text
