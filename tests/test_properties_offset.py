"""Property-based tests for the offset-assignment substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.offset.access_graph import VariableAccessGraph
from repro.offset.sequence import AccessSequence
from repro.offset.soa import (
    assignment_cost,
    liao_soa,
    ofu_assignment,
    optimal_assignment,
    tiebreak_soa,
)

variable_names = st.sampled_from(["a", "b", "c", "d", "e", "f"])
sequences = st.lists(variable_names, min_size=0, max_size=20).map(
    lambda names: AccessSequence(tuple(names)))


class TestSoaProperties:
    @given(sequences)
    def test_heuristics_return_permutations(self, sequence):
        expected = sorted(sequence.variables())
        for heuristic in (ofu_assignment, liao_soa, tiebreak_soa):
            assert sorted(heuristic(sequence)) == expected

    @settings(max_examples=50, deadline=None)
    @given(sequences)
    def test_optimal_is_the_floor(self, sequence):
        best = assignment_cost(optimal_assignment(sequence), sequence)
        for heuristic in (ofu_assignment, liao_soa, tiebreak_soa):
            assert best <= assignment_cost(heuristic(sequence), sequence)

    @given(sequences)
    def test_cost_bounded_by_transitions(self, sequence):
        layout = ofu_assignment(sequence)
        cost = assignment_cost(layout, sequence)
        assert 0 <= cost <= len(sequence.transitions())

    @given(sequences, st.integers(0, 5))
    def test_cost_weakly_decreases_in_auto_range(self, sequence,
                                                 auto_range):
        layout = ofu_assignment(sequence)
        narrow = assignment_cost(layout, sequence, auto_range=auto_range)
        wide = assignment_cost(layout, sequence, auto_range=auto_range + 1)
        assert wide <= narrow

    @given(sequences)
    def test_mirror_layout_has_equal_cost(self, sequence):
        layout = liao_soa(sequence)
        assert assignment_cost(layout, sequence) == \
            assignment_cost(tuple(reversed(layout)), sequence)


class TestAccessGraphProperties:
    @given(sequences)
    def test_total_weight_counts_transitions(self, sequence):
        graph = VariableAccessGraph(sequence)
        assert graph.total_weight == len(sequence.transitions())

    @given(sequences)
    def test_incident_weights_sum_to_twice_total(self, sequence):
        graph = VariableAccessGraph(sequence)
        total = sum(graph.incident_weight(name)
                    for name in graph.variables)
        assert total == 2 * graph.total_weight

    @given(sequences)
    def test_cost_equals_uncovered_weight_for_chain_layouts(self, sequence):
        """For any layout, cost = total weight - weight of edges between
        memory neighbours (the defining identity of SOA)."""
        graph = VariableAccessGraph(sequence)
        layout = tiebreak_soa(sequence)
        covered = sum(graph.weight(u, v)
                      for u, v in zip(layout, layout[1:]))
        assert assignment_cost(layout, sequence) == \
            graph.total_weight - covered
