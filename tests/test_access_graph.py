"""Unit tests for the access graph (the paper's Figure 1 model)."""

import pytest

from repro.errors import GraphError
from repro.graph.access_graph import AccessGraph
from repro.graph.dot import graph_to_ascii, graph_to_dot
from repro.graph.properties import (
    degree_summary,
    intra_density,
    isolated_nodes,
    undirected_components,
)
from repro.ir.builder import LoopBuilder, pattern_from_offsets


class TestFigure1:
    """The example graph must match the paper exactly."""

    EXPECTED_INTRA = {
        (0, 1), (0, 2), (0, 4), (0, 5),   # a_1 -> a_2, a_3, a_5, a_6
        (1, 3), (1, 4), (1, 5),           # a_2 -> a_4, a_5, a_6
        (2, 4),                           # a_3 -> a_5
        (3, 5), (3, 6),                   # a_4 -> a_6, a_7
        (4, 5),                           # a_5 -> a_6
    }

    def test_intra_edges_exact(self, paper_graph):
        assert set(paper_graph.intra_edges) == self.EXPECTED_INTRA

    def test_paper_path_exists(self, paper_graph):
        # "the access subsequence (a_1, a_3, a_5, a_6) ... is a path in G"
        for p, q in [(0, 2), (2, 4), (4, 5)]:
            assert paper_graph.has_intra_edge(p, q)

    def test_successors_and_predecessors_agree(self, paper_graph):
        for p, q in paper_graph.intra_edges:
            assert q in paper_graph.successors(p)
            assert p in paper_graph.predecessors(q)

    def test_inter_edges_follow_wrap_distance(self, paper_graph):
        offsets = paper_graph.pattern.offsets()
        expected = {
            (q, p)
            for q in range(7) for p in range(7)
            if abs(offsets[p] + 1 - offsets[q]) <= 1
        }
        assert set(paper_graph.inter_edges) == expected

    def test_stats(self, paper_graph):
        stats = paper_graph.stats()
        assert stats.n_nodes == 7
        assert stats.n_intra_edges == 11
        assert stats.n_inter_edges == 26


class TestConstructionRules:
    def test_modify_range_widens_edges(self, paper_pattern):
        g1 = AccessGraph(paper_pattern, 1)
        g4 = AccessGraph(paper_pattern, 4)
        assert set(g1.intra_edges) < set(g4.intra_edges)
        # With M=4 every pair is within range: complete DAG.
        assert len(g4.intra_edges) == 7 * 6 // 2

    def test_zero_modify_range(self):
        graph = AccessGraph(pattern_from_offsets([1, 1, 2]), 0)
        assert set(graph.intra_edges) == {(0, 1)}

    def test_no_edges_across_arrays(self):
        pattern = (LoopBuilder().read("A", 0).read("B", 0)
                   .build_pattern())
        graph = AccessGraph(pattern, 10)
        assert not graph.intra_edges
        # Only self-wrap edges remain (a register can follow its own
        # access across iterations); nothing crosses the arrays.
        assert set(graph.inter_edges) == {(0, 0), (1, 1)}

    def test_no_edges_across_coefficients(self):
        pattern = (LoopBuilder().read("A", 0, coefficient=1)
                   .read("A", 0, coefficient=2).build_pattern())
        graph = AccessGraph(pattern, 10)
        assert not graph.intra_edges

    def test_step_changes_inter_edges_only(self, paper_pattern):
        g1 = AccessGraph(paper_pattern, 1)
        g3 = AccessGraph(paper_pattern.with_step(3), 1)
        assert g1.intra_edges == g3.intra_edges
        assert g1.inter_edges != g3.inter_edges

    def test_empty_pattern(self):
        graph = AccessGraph(pattern_from_offsets([]), 1)
        assert graph.n_nodes == 0
        assert graph.stats().n_intra_edges == 0

    def test_negative_modify_range_rejected(self, paper_pattern):
        with pytest.raises(GraphError):
            AccessGraph(paper_pattern, -1)

    def test_node_range_checked(self, paper_graph):
        with pytest.raises(GraphError):
            paper_graph.successors(7)
        with pytest.raises(GraphError):
            paper_graph.predecessors(-1)


class TestPathsFrom:
    def test_enumerates_simple_paths(self, paper_graph):
        paths = set(paper_graph.paths_from(2))  # a_3
        assert (2,) in paths
        assert (2, 4) in paths
        assert (2, 4, 5) in paths
        assert len(paths) == 3


class TestRendering:
    def test_ascii_contains_labels(self, paper_graph):
        text = graph_to_ascii(paper_graph, include_inter=True)
        assert "a_1" in text and "a_7" in text
        assert "wrap-around" in text

    def test_dot_structure(self, paper_graph):
        dot = graph_to_dot(paper_graph)
        assert dot.startswith("digraph")
        assert "n0 -> n1;" in dot
        assert "dashed" not in dot

    def test_dot_with_inter_edges(self, paper_graph):
        dot = graph_to_dot(paper_graph, include_inter=True)
        assert "dashed" in dot


class TestProperties:
    def test_density_bounds(self, paper_graph):
        assert intra_density(paper_graph) == pytest.approx(11 / 21)

    def test_density_empty(self):
        assert intra_density(AccessGraph(pattern_from_offsets([]), 1)) == 0.0
        assert intra_density(AccessGraph(pattern_from_offsets([5]), 1)) == 0.0

    def test_degree_summary(self, paper_graph):
        summary = degree_summary(paper_graph)
        assert summary.max_out == 4   # a_1
        assert summary.min_out == 0   # a_6, a_7
        assert summary.mean_out == pytest.approx(11 / 7)
        assert summary.mean_in == pytest.approx(11 / 7)

    def test_isolated_nodes(self):
        graph = AccessGraph(pattern_from_offsets([0, 100, 1]), 1)
        assert isolated_nodes(graph) == (1,)

    def test_components(self):
        graph = AccessGraph(pattern_from_offsets([0, 100, 1, 101]), 1)
        assert undirected_components(graph) == [(0, 2), (1, 3)]

    def test_single_component_when_dense(self, paper_graph):
        assert undirected_components(paper_graph) == [tuple(range(7))]
