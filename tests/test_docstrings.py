"""The docs-lint gate, as a test: public docstring coverage must stay
at 100 % for the API surface (`repro`, `repro.batch.*`, `repro.cli.*`)
and above the pinned whole-tree floor.

The implementation lives in ``tools/check_docstrings.py`` (a
dependency-free stand-in for ``interrogate``; the CI image ships no
lint extras) -- this test runs it exactly the way CI's docs-lint step
does, so a regression fails both gates identically.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

CHECKER = Path(__file__).resolve().parents[1] / "tools" / \
    "check_docstrings.py"


def test_public_docstring_coverage_gate():
    completed = subprocess.run(
        [sys.executable, str(CHECKER)],
        capture_output=True, text=True, timeout=120)
    assert completed.returncode == 0, (
        "public docstring coverage regressed:\n" + completed.stdout)
    assert "public docstring coverage" in completed.stdout
