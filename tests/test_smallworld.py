"""Exhaustive small-world sweep: every invariant on every tiny instance.

Enumerates *all* single-array patterns of length up to 4 with offsets in
[-2, 2] (775 instances) and checks the full invariant stack on each:
bound bracket, zero-cost cover validity, merge-to-K costs vs the
exhaustive optimum, and the codegen/simulator audit.  Slow-ish (a few
seconds) but complete: any systematic defect in the core algorithms on
small instances cannot hide.
"""

import itertools

import pytest

from repro.agu.codegen import generate_address_code
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.graph.access_graph import AccessGraph
from repro.ir.builder import pattern_from_offsets
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayDecl, Loop
from repro.merging.exhaustive import optimal_allocation
from repro.merging.greedy import best_pair_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.pathcover.verify import is_zero_cost_path

SPAN = (-2, -1, 0, 1, 2)


def all_patterns(max_length: int = 4):
    for length in range(1, max_length + 1):
        for offsets in itertools.product(SPAN, repeat=length):
            yield offsets


@pytest.fixture(scope="module")
def layout():
    return MemoryLayout.contiguous([ArrayDecl("A", length=32)], origin=8)


def test_exhaustive_bound_bracket_and_cover_validity():
    for offsets in all_patterns():
        pattern = pattern_from_offsets(list(offsets))
        graph = AccessGraph(pattern, 1)
        lower = intra_cover_lower_bound(graph)
        greedy = greedy_zero_cost_cover(graph)
        exact = minimum_zero_cost_cover(pattern, 1)
        assert lower <= exact.k_tilde <= greedy.n_paths, offsets
        assert exact.optimal, offsets
        for path in exact.cover:
            assert is_zero_cost_path(path, pattern, 1), offsets


def test_exhaustive_merging_vs_optimum_k2():
    for offsets in all_patterns():
        pattern = pattern_from_offsets(list(offsets))
        exact = minimum_zero_cost_cover(pattern, 1)
        merged = best_pair_merge(exact.cover, 2, pattern, 1)
        optimum = optimal_allocation(pattern, 2, 1)
        assert merged.total_cost >= optimum.total_cost, offsets
        # On instances this small the heuristic must stay within one
        # unit-cost computation of the optimum.
        assert merged.total_cost - optimum.total_cost <= 1, offsets


def test_exhaustive_codegen_simulator_audit(layout):
    for offsets in all_patterns(max_length=3):
        pattern = pattern_from_offsets(list(offsets))
        exact = minimum_zero_cost_cover(pattern, 1)
        merged = best_pair_merge(exact.cover, 1, pattern, 1)
        spec = AguSpec(1, 1)
        program = generate_address_code(pattern, merged.cover, spec)
        loop = Loop(pattern, start=0, n_iterations=3)
        result = simulate(program, loop, layout)
        assert result.overhead_per_iteration == merged.total_cost, offsets
