"""Tests of the one-shot Markdown report generator."""

import pytest

from repro.analysis.report import (
    ReportConfig,
    generate_report,
    save_report_markdown,
)


@pytest.fixture(scope="module")
def quick_report() -> str:
    # Only the cheap sections, with the scaled-down statistical grid.
    config = ReportConfig(quick=True, include=("s1", "k1", "x2"))
    return generate_report(config)


class TestGenerateReport:
    def test_title_and_sections(self, quick_report):
        assert quick_report.startswith("# Reproduction report")
        assert "## EXP-S1" in quick_report
        assert "## EXP-K1" in quick_report
        assert "## EXP-X2" in quick_report

    def test_excluded_sections_absent(self, quick_report):
        assert "EXP-A1" not in quick_report
        assert "EXP-O1" not in quick_report

    def test_tables_render_in_code_blocks(self, quick_report):
        assert "```" in quick_report
        assert "cost(best-pair)" in quick_report

    def test_measured_numbers_present(self, quick_report):
        assert "average reduction" in quick_report
        assert "%" in quick_report


class TestSaveReport:
    def test_writes_file(self, tmp_path):
        target = save_report_markdown(
            tmp_path / "out" / "REPORT.md",
            ReportConfig(quick=True, include=("s1",)))
        assert target.exists()
        assert target.read_text().startswith("# Reproduction report")

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli.main import main
        target = tmp_path / "r.md"
        assert main(["report", "-o", str(target), "--quick",
                     "--only", "s1,k1"]) == 0
        assert target.exists()
        assert "report written" in capsys.readouterr().out
