"""Unit tests for the kernel-language tokenizer."""

import pytest

from repro.errors import ParseError
from repro.ir.lexer import Token, TokenType, tokenize


def kinds(source: str) -> list[tuple[TokenType, str]]:
    return [(token.type, token.value) for token in tokenize(source)]


class TestBasics:
    def test_empty_input_is_just_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifier_and_int(self):
        assert kinds("abc 42")[:2] == [
            (TokenType.IDENT, "abc"), (TokenType.INT, "42")]

    def test_keywords(self):
        assert kinds("for int forint")[:3] == [
            (TokenType.KEYWORD, "for"), (TokenType.KEYWORD, "int"),
            (TokenType.IDENT, "forint")]

    def test_underscore_identifiers(self):
        assert kinds("_x x_1")[:2] == [
            (TokenType.IDENT, "_x"), (TokenType.IDENT, "x_1")]

    def test_all_single_char_operators(self):
        source = "+ - * / % < > = ; , ( ) { } [ ]"
        tokens = tokenize(source)
        assert [t.value for t in tokens[:-1]] == source.split()

    def test_multi_char_operators_maximal_munch(self):
        assert kinds("<= >= == != ++ -- += -=")[:8] == [
            (TokenType.OP, "<="), (TokenType.OP, ">="),
            (TokenType.OP, "=="), (TokenType.OP, "!="),
            (TokenType.OP, "++"), (TokenType.OP, "--"),
            (TokenType.OP, "+="), (TokenType.OP, "-=")]

    def test_plus_plus_vs_plus(self):
        # i+++1 scans as i ++ + 1 (C's maximal munch).
        assert [value for _t, value in kinds("i+++1")[:-1]] == \
            ["i", "++", "+", "1"]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment\n b")[:2] == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* anything\n at all */ b")[:2] == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_block_comment_not_nested(self):
        tokens = kinds("/* outer /* inner */ b")
        assert tokens[0] == (TokenType.IDENT, "b")

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError, match="unterminated"):
            tokenize("a /* oops")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("x\n  @")
        assert info.value.line == 2
        assert info.value.column == 3


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("a $ b")

    def test_malformed_number(self):
        with pytest.raises(ParseError, match="malformed number"):
            tokenize("12ab")

    def test_token_str(self):
        token = Token(TokenType.IDENT, "xyz", 1, 1)
        assert "xyz" in str(token)
        eof = tokenize("")[0]
        assert str(eof) == "end of input"
