"""Unit tests for the programmatic loop builder."""

import pytest

from repro.errors import IrError
from repro.ir.builder import LoopBuilder, loop_from_offsets, pattern_from_offsets


class TestPatternFromOffsets:
    def test_paper_example(self):
        pattern = pattern_from_offsets([1, 0, 2, -1, 1, 0, -2])
        assert pattern.offsets() == (1, 0, 2, -1, 1, 0, -2)
        assert pattern.arrays() == ("A",)
        assert all(access.coefficient == 1 for access in pattern)

    def test_custom_array_and_step(self):
        pattern = pattern_from_offsets([0, 1], array="buf", step=2,
                                       loop_var="n")
        assert pattern.arrays() == ("buf",)
        assert pattern.step == 2
        assert pattern.loop_var == "n"
        assert pattern[0].index.var == "n"

    def test_empty(self):
        assert len(pattern_from_offsets([])) == 0


class TestLoopFromOffsets:
    def test_bounds(self):
        loop = loop_from_offsets([0, 1], start=3, n_iterations=5)
        assert loop.iteration_values() == [3, 4, 5, 6, 7]


class TestLoopBuilder:
    def test_fluent_build(self):
        kernel = (LoopBuilder("fir", start=0, n_iterations=8)
                  .array("x", length=32).array("y")
                  .read("x", 0).read("x", 1).write("y", 0)
                  .scalar("acc", is_write=True)
                  .build())
        assert kernel.name == "fir"
        assert [str(a) for a in kernel.pattern] == ["x[i]", "x[i+1]", "y[i]="]
        assert kernel.array("x").length == 32
        assert kernel.scalar_sequence() == ("acc",)

    def test_implicit_array_declaration(self):
        kernel = LoopBuilder().access("z", 3).build()
        assert kernel.array("z").length is None

    def test_coefficient_access(self):
        kernel = LoopBuilder().access("x", 1, coefficient=2).build()
        assert kernel.pattern[0].coefficient == 2

    def test_duplicate_array_rejected(self):
        with pytest.raises(IrError, match="already declared"):
            LoopBuilder().array("x").array("x")

    def test_zero_step_rejected(self):
        with pytest.raises(IrError):
            LoopBuilder(step=0)

    def test_build_pattern_and_loop(self):
        builder = LoopBuilder(start=1, step=2, n_iterations=3).read("A", 0)
        assert builder.build_pattern().step == 2
        assert builder.build_loop().iteration_values() == [1, 3, 5]

    def test_symbolic_bound(self):
        kernel = LoopBuilder(bound_symbol="N").read("A", 0).build()
        assert kernel.loop.bound_symbol == "N"
        assert kernel.loop.n_iterations is None
