"""Failure-path tests of the batch engine: crashing jobs, dying
worker processes, and interrupted streams.

The contract under test (see ``BatchCompiler.as_completed``): a
failing job aborts the run with a :class:`BatchError` that names the
job and its digest, the process pool is shut down rather than
orphaned, and every point that completed stays persisted -- so a
re-run against the same cache resumes instead of starting over.

``TestFailureContractAcrossExecutors`` is the executor differential:
the same contract, byte for byte, whether the jobs ran inline, on a
local process pool, or on a worker fleet behind a job server.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import pytest

from _cluster_jobs import thread_fleet

from repro.agu.model import AguSpec
from repro.batch.cache import InMemoryLRUCache, ShardedDirectoryCache
from repro.batch.cluster import ClusterExecutor
from repro.batch.digest import job_digest
from repro.batch.engine import BatchCompiler
from repro.batch.jobs import jobs_from_suite
from repro.errors import BatchError

SPEC = AguSpec(4, 1)


# Module-level so the process pool can pickle them into workers.
@dataclass(frozen=True)
class CrashingJob:
    """A job whose execution raises (a plain worker exception)."""

    name: str

    def cache_key(self) -> dict:
        return {"v": 0, "crash-test": self.name}

    def execute(self):
        raise RuntimeError(f"injected crash in {self.name}")


@dataclass(frozen=True)
class InterruptingJob:
    """A job whose execution raises KeyboardInterrupt (a Ctrl-C that
    lands inside a worker; the pool re-raises it at ``result()``)."""

    name: str

    def cache_key(self) -> dict:
        return {"v": 0, "interrupt-test": self.name}

    def execute(self):
        raise KeyboardInterrupt


@dataclass(frozen=True)
class WorkerKillerJob:
    """A job that kills its worker process outright (no exception
    crosses the pipe), breaking the process pool."""

    name: str

    def cache_key(self) -> dict:
        return {"v": 0, "worker-killer": self.name}

    def execute(self):  # pragma: no cover - runs in a doomed worker
        os._exit(13)


def good_jobs(count: int = 6):
    return jobs_from_suite("full", SPEC, n_iterations=4)[:count]


class TestCrashingJobInline:
    def test_batch_error_names_job_and_digest(self, tmp_path):
        jobs = [*good_jobs(3), CrashingJob(name="poison")]
        store = ShardedDirectoryCache(tmp_path / "store")
        compiler = BatchCompiler(cache=store)
        streamed = []
        with pytest.raises(BatchError) as caught:
            for index, result in compiler.as_completed(jobs):
                streamed.append(result)
        assert caught.value.job_name == "poison"
        assert caught.value.digest == job_digest(CrashingJob("poison"))
        assert "poison" in str(caught.value)
        assert caught.value.digest in str(caught.value)
        assert "injected crash" in str(caught.value)
        assert isinstance(caught.value.__cause__, RuntimeError)
        assert len(streamed) == 3

    def test_compile_path_names_the_failing_job(self):
        with pytest.raises(BatchError) as caught:
            BatchCompiler().compile([*good_jobs(2),
                                     CrashingJob(name="poison")])
        assert caught.value.job_name == "poison"
        assert caught.value.digest is not None

    def test_configuration_errors_keep_a_bare_batch_error(self):
        error = BatchError("n_workers must be >= 1")
        assert error.job_name is None and error.digest is None

    @pytest.mark.parametrize("workers", [1, 2])
    def test_salvage_failure_does_not_mask_the_culprit(self, workers):
        """A cache that cannot take the salvage writes (disk full,
        dead server) must not displace the job failure -- the caller
        still gets the BatchError naming the poison job."""
        cache = InMemoryLRUCache()
        def refuse(*args, **kwargs):
            raise OSError("disk full")
        cache.put = cache.put_many = refuse
        with pytest.raises(BatchError) as caught:
            BatchCompiler(cache=cache, n_workers=workers).compile(
                [*good_jobs(2), CrashingJob(name="poison")])
        assert caught.value.job_name == "poison"


class TestCrashingJobPooled:
    """The crash-injection differential: a mid-batch worker failure
    must leave exactly the completed prefix persisted and resumable."""

    def test_completed_points_survive_and_resume(self, tmp_path):
        survivors = good_jobs(6)
        jobs = [*survivors, CrashingJob(name="poison")]
        store = ShardedDirectoryCache(tmp_path / "store")
        with pytest.raises(BatchError) as caught:
            for _ in BatchCompiler(cache=store,
                                   n_workers=2).as_completed(jobs):
                pass
        assert caught.value.job_name == "poison"

        # Differential: the resumed run serves everything the crashed
        # run persisted and computes only the remainder, bit-identical
        # to a run that never crashed.
        fresh = BatchCompiler().compile(survivors)
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(survivors)
        assert resumed.n_cache_hits == len(store)
        assert resumed.n_cache_hits >= 1
        assert resumed.n_compiled \
            == len(survivors) - resumed.n_cache_hits
        assert [(r.name, r.total_cost, r.k_tilde)
                for r in resumed.results] \
            == [(r.name, r.total_cost, r.k_tilde)
                for r in fresh.results]

    def test_pooled_compile_names_the_failing_job(self):
        with pytest.raises(BatchError) as caught:
            BatchCompiler(n_workers=2).compile(
                [*good_jobs(3), CrashingJob(name="poison")])
        assert caught.value.job_name == "poison"
        assert isinstance(caught.value.__cause__, RuntimeError)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_compile_persists_completed_work_before_raising(
            self, tmp_path, workers):
        """compile() honors the same salvage contract as the
        streaming path: work that finished before the failure is in
        the cache, so the re-run resumes instead of starting over."""
        survivors = good_jobs(4)
        store = ShardedDirectoryCache(tmp_path / "store")
        with pytest.raises(BatchError):
            BatchCompiler(cache=store, n_workers=workers).compile(
                [*survivors, CrashingJob(name="poison")])
        assert len(store) >= 1
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(survivors)
        assert resumed.n_cache_hits == len(store)
        assert resumed.n_compiled == len(survivors) - len(store)


class TestBrokenProcessPool:
    def test_dead_worker_surfaces_as_batch_error(self, tmp_path):
        store = ShardedDirectoryCache(tmp_path / "store")
        jobs = [WorkerKillerJob(name="killer"), *good_jobs(2)]
        with pytest.raises(BatchError) as caught:
            for _ in BatchCompiler(cache=store,
                                   n_workers=2).as_completed(jobs):
                pass
        # Every victim future carries BrokenProcessPool; whichever
        # surfaces first is named -- hedged as "in flight", since the
        # pool cannot identify the true culprit.
        assert caught.value.job_name is not None
        assert caught.value.digest is not None
        assert "process pool died" in str(caught.value)
        assert "in flight" in str(caught.value)

    def test_engine_usable_after_a_broken_pool(self):
        with pytest.raises(BatchError):
            BatchCompiler(n_workers=2).compile(
                [WorkerKillerJob(name="killer"), *good_jobs(2)])
        # The pool was shut down, not orphaned: a fresh run works.
        report = BatchCompiler(n_workers=2).compile(good_jobs(4))
        assert report.n_jobs == 4 and report.all_audits_ok


class TestKeyboardInterrupt:
    """Interrupting a streamed run must shut the executor down without
    hanging and leave the persisted prefix resumable."""

    def interrupt_after(self, compiler, jobs, count: int) -> int:
        stream = compiler.as_completed(jobs)
        delivered = 0
        with pytest.raises(KeyboardInterrupt):
            try:
                for _index, _result in stream:
                    delivered += 1
                    if delivered >= count:
                        raise KeyboardInterrupt
            finally:
                stream.close()  # deterministic teardown, like the REPL
        return delivered

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupt_then_resume(self, tmp_path, workers):
        jobs = good_jobs(6)
        store = ShardedDirectoryCache(tmp_path / "store")
        compiler = BatchCompiler(cache=store, n_workers=workers)
        delivered = self.interrupt_after(compiler, jobs, 2)
        assert delivered == 2
        # Everything delivered (plus any in-flight completion the
        # shutdown drained) is persisted; nothing is persisted twice.
        assert len(store) >= delivered
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root),
            n_workers=workers).compile(jobs)
        assert resumed.n_cache_hits >= delivered
        assert resumed.n_compiled <= len(jobs) - delivered
        fresh = BatchCompiler().compile(jobs)
        assert [(r.name, r.total_cost) for r in resumed.results] \
            == [(r.name, r.total_cost) for r in fresh.results]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_compile_persists_completed_prefix(
            self, tmp_path, workers):
        """Ctrl-C during compile() (surfacing from inline execution or
        through a pool future): the interrupt propagates as-is -- not
        wrapped in a BatchError -- after the completed prefix is
        persisted, so the resumed run skips the finished work."""
        survivors = good_jobs(4)
        store = ShardedDirectoryCache(tmp_path / "store")
        with pytest.raises(KeyboardInterrupt):
            BatchCompiler(cache=store, n_workers=workers).compile(
                [*survivors, InterruptingJob(name="ctrl-c")])
        assert len(store) >= 1
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(survivors)
        assert resumed.n_cache_hits == len(store)
        assert resumed.n_compiled == len(survivors) - len(store)

    def test_interrupted_run_iter_resumes(self, tmp_path):
        jobs = good_jobs(5)
        store = ShardedDirectoryCache(tmp_path / "store")
        stream = BatchCompiler(cache=store, n_workers=2).run_iter(jobs)
        with pytest.raises(KeyboardInterrupt):
            try:
                for delivered, _result in enumerate(stream, start=1):
                    if delivered >= 2:
                        raise KeyboardInterrupt
            finally:
                stream.close()
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(jobs)
        assert resumed.n_cache_hits >= 1
        assert resumed.n_cache_hits == len(store)


@contextmanager
def open_test_executor(kind: str):
    """An executor backend by differential kind: an ``open_executor``
    spec for the local ones, a live thread-fleet cluster otherwise."""
    if kind == "cluster":
        with thread_fleet(n_workers=2) as server:
            yield ClusterExecutor(*server.address)
        return
    yield kind


@pytest.mark.parametrize("kind", ["inline", "local:2", "cluster"])
class TestFailureContractAcrossExecutors:
    """The executor differential: `BatchError` attribution, completed-
    work persistence, and cache resumability are byte-identical across
    every execution backend."""

    def test_crash_attribution_is_identical(self, tmp_path, kind):
        store = ShardedDirectoryCache(tmp_path / "store")
        with open_test_executor(kind) as executor:
            with pytest.raises(BatchError) as caught:
                BatchCompiler(cache=store, executor=executor).compile(
                    [*good_jobs(4), CrashingJob(name="poison")])
        assert caught.value.job_name == "poison"
        assert caught.value.digest == job_digest(CrashingJob("poison"))
        assert "poison" in str(caught.value)
        assert caught.value.digest in str(caught.value)
        assert "injected crash" in str(caught.value)

    def test_completed_work_persists_and_resumes(self, tmp_path, kind):
        survivors = good_jobs(4)
        store = ShardedDirectoryCache(tmp_path / "store")
        with open_test_executor(kind) as executor:
            with pytest.raises(BatchError):
                BatchCompiler(cache=store, executor=executor).compile(
                    [*survivors, CrashingJob(name="poison")])
        assert len(store) >= 1
        fresh = BatchCompiler().compile(survivors)
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(survivors)
        assert resumed.n_cache_hits == len(store)
        assert resumed.n_compiled == len(survivors) - len(store)
        assert [(r.name, r.total_cost, r.k_tilde)
                for r in resumed.results] \
            == [(r.name, r.total_cost, r.k_tilde)
                for r in fresh.results]

    def test_streaming_failure_salvages_delivered_prefix(
            self, tmp_path, kind):
        store = ShardedDirectoryCache(tmp_path / "store")
        streamed = []
        with open_test_executor(kind) as executor:
            compiler = BatchCompiler(cache=store, executor=executor)
            with pytest.raises(BatchError) as caught:
                for _index, result in compiler.as_completed(
                        [*good_jobs(3), CrashingJob(name="poison")]):
                    streamed.append(result)
        assert caught.value.job_name == "poison"
        # Everything delivered before the failure is in the store.
        assert len(store) >= len(streamed)

    def test_interrupted_stream_resumes(self, tmp_path, kind):
        jobs = good_jobs(6)
        store = ShardedDirectoryCache(tmp_path / "store")
        with open_test_executor(kind) as executor:
            compiler = BatchCompiler(cache=store, executor=executor)
            stream = compiler.as_completed(jobs)
            delivered = 0
            with pytest.raises(KeyboardInterrupt):
                try:
                    for _index, _result in stream:
                        delivered += 1
                        if delivered >= 2:
                            raise KeyboardInterrupt
                finally:
                    stream.close()
        assert delivered == 2
        persisted = len(store)
        assert persisted >= delivered
        resumed = BatchCompiler(
            cache=ShardedDirectoryCache(store.root)).compile(jobs)
        assert resumed.n_cache_hits == persisted
        fresh = BatchCompiler().compile(jobs)
        assert [(r.name, r.total_cost) for r in resumed.results] \
            == [(r.name, r.total_cost) for r in fresh.results]
