"""Unit tests for tables, stats helpers, and JSON reports."""

import math

import pytest

from repro.analysis.reports import load_report, save_report, to_jsonable
from repro.analysis.stats import (
    confidence_interval95,
    mean,
    percent_reduction,
    stdev,
    weighted_overall_reduction,
)
from repro.analysis.tables import Column, Table
from repro.errors import ExperimentError
from repro.merging.cost import CostModel
from repro.pathcover.paths import Path


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ExperimentError):
            mean([])

    def test_stdev(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            math.sqrt(32 / 7))

    def test_stdev_singleton(self):
        assert stdev([5]) == 0.0

    def test_confidence_interval(self):
        low, high = confidence_interval95([10.0] * 16)
        assert low == high == 10.0
        low, high = confidence_interval95([0.0, 10.0] * 8)
        assert low < 5.0 < high

    def test_percent_reduction(self):
        assert percent_reduction(10, 6) == pytest.approx(40.0)
        assert percent_reduction(0, 0) == 0.0
        assert percent_reduction(10, 12) == pytest.approx(-20.0)

    def test_weighted_overall(self):
        assert weighted_overall_reduction([10, 0], [5, 0]) == \
            pytest.approx(50.0)
        with pytest.raises(ExperimentError):
            weighted_overall_reduction([1], [1, 2])


class TestTable:
    def test_render_alignment_and_formats(self):
        table = Table([
            Column("name", "name", align="<"),
            Column("value", "value", ".2f"),
        ], title="demo")
        table.add_row(name="alpha", value=1.5)
        table.add_row(name="b", value=22.125)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert set(lines[2]) == {"-"}  # header rule
        assert "alpha" in lines[3]
        assert "22.12" in text
        assert "1.50" in text

    def test_none_renders_as_dash(self):
        table = Table([Column("x", "x", ".1f")])
        table.add_row(x=None)
        assert "-" in table.render()

    def test_missing_key_renders_empty(self):
        table = Table([Column("x", "x"), Column("y", "y")])
        table.add_row(x=3)
        assert table.render()  # no crash

    def test_add_rows_bulk(self):
        table = Table([Column("x", "x")])
        table.add_rows([{"x": 1}, {"x": 2}])
        assert table.n_rows == 2

    def test_empty_columns_rejected(self):
        with pytest.raises(ExperimentError):
            Table([])

    def test_str_is_render(self):
        table = Table([Column("x", "x")])
        table.add_row(x=1)
        assert str(table) == table.render()


class TestJsonable:
    def test_enum_and_tuple(self):
        assert to_jsonable(CostModel.INTRA) == "intra"
        assert to_jsonable((1, 2)) == [1, 2]

    def test_nested_dataclass(self):
        path = Path((0, 2))
        lowered = to_jsonable({"path": path})
        assert lowered == {"path": {"indices": [0, 2]}}

    def test_fallback_to_str(self):
        class Odd:
            def __str__(self):
                return "odd!"
        assert to_jsonable(Odd()) == "odd!"

    def test_scalars_pass_through(self):
        for value in (1, 1.5, "x", True, None):
            assert to_jsonable(value) == value


class TestReports:
    def test_round_trip(self, tmp_path):
        payload = {"rows": [(1, 2), (3, 4)], "model": CostModel.STEADY_STATE}
        target = save_report(payload, tmp_path / "sub" / "report.json")
        assert target.exists()
        loaded = load_report(target)
        assert loaded == {"rows": [[1, 2], [3, 4]],
                          "model": "steady_state"}

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_report(tmp_path / "nope.json")
