"""Tests of the batch result cache: digests, stores, invalidation."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.agu.model import AguSpec
from repro.batch.cache import (
    CacheStats,
    InMemoryLRUCache,
    JsonFileCache,
    ShardedDirectoryCache,
    open_cache,
)
from repro.batch.digest import job_digest
from repro.batch.engine import BatchCompiler
from repro.batch.jobs import BatchJob, jobs_from_suite
from repro.core.config import AllocatorConfig
from repro.errors import BatchError
from repro.ir.builder import pattern_from_offsets

SOURCE = """
for (i = 2; i <= 100; i++) {
    A[i+1]; A[i]; A[i+2]; A[i-1]; A[i+1]; A[i]; A[i-2];
}
"""


def make_job(**overrides) -> BatchJob:
    fields = dict(name="example", spec=AguSpec(2, 1), source=SOURCE,
                  n_iterations=8)
    fields.update(overrides)
    return BatchJob(**fields)


class TestDigest:
    def test_digest_is_deterministic(self):
        assert job_digest(make_job()) == job_digest(make_job())

    def test_digest_is_content_addressed_not_name_addressed(self):
        """Renaming a job must not invalidate its cache entry."""
        assert job_digest(make_job(name="a")) \
            == job_digest(make_job(name="b"))

    def test_source_change_invalidates(self):
        changed = SOURCE.replace("A[i+2]", "A[i+3]")
        assert job_digest(make_job()) \
            != job_digest(make_job(source=changed))

    def test_spec_change_invalidates(self):
        assert job_digest(make_job()) \
            != job_digest(make_job(spec=AguSpec(3, 1)))
        assert job_digest(make_job()) \
            != job_digest(make_job(spec=AguSpec(2, 2)))

    def test_config_change_invalidates(self):
        default = make_job(config=AllocatorConfig())
        tweaked = make_job(config=AllocatorConfig(exact_cover_limit=5))
        assert job_digest(default) != job_digest(tweaked)
        assert job_digest(make_job()) != job_digest(default)

    def test_option_change_invalidates(self):
        assert job_digest(make_job()) \
            != job_digest(make_job(run_simulation=False))
        assert job_digest(make_job()) \
            != job_digest(make_job(n_iterations=9))
        assert job_digest(make_job()) \
            != job_digest(make_job(include_baseline=True))

    def test_pattern_jobs_digest_structurally(self):
        first = BatchJob(name="p", spec=AguSpec(2, 1),
                         pattern=pattern_from_offsets((1, 0, -1)))
        same = BatchJob(name="q", spec=AguSpec(2, 1),
                        pattern=pattern_from_offsets((1, 0, -1)))
        other = BatchJob(name="p", spec=AguSpec(2, 1),
                         pattern=pattern_from_offsets((1, 0, -2)))
        assert job_digest(first) == job_digest(same)
        assert job_digest(first) != job_digest(other)

    def test_sets_digest_independently_of_iteration_order(self):
        """Hash-order containers must not leak into the digest."""
        from repro.batch.digest import digest_payload
        first = digest_payload({"s": frozenset({"b", "a", "c"})})
        second = digest_payload({"s": frozenset({"c", "b", "a"})})
        assert first == second
        assert digest_payload({"s": frozenset({1, 2})}) \
            != digest_payload({"s": frozenset({1, 3})})

    def test_mixed_type_set_contents_digest(self):
        """Structural set ordering handles unlike member types (which
        json.dumps-free sorting must never compare directly)."""
        from repro.batch.digest import digest_payload
        first = digest_payload({"s": frozenset({None, 2.5, "a", 3})})
        second = digest_payload({"s": frozenset({"a", 3, None, 2.5})})
        assert first == second

    def test_mixed_type_dict_keys_digest(self):
        """Dicts with str and scalar keys digest deterministically
        (DIGEST_VERSION 1 raised TypeError on the sort)."""
        from repro.batch.digest import digest_payload
        first = digest_payload({1: "a", "b": 2, None: 3, 2.5: "c"})
        second = digest_payload({2.5: "c", None: 3, "b": 2, 1: "a"})
        assert first == second

    def test_key_types_are_disambiguated(self):
        """``{1: x}`` and ``{"1": x}`` are different payloads and must
        have different digests (DIGEST_VERSION 1 collided them)."""
        from repro.batch.digest import digest_payload
        assert digest_payload({1: "x"}) != digest_payload({"1": "x"})
        assert digest_payload({True: "x"}) != digest_payload({"True": "x"})
        assert digest_payload({None: "x"}) != digest_payload({"None": "x"})

    def test_non_scalar_dict_keys_are_rejected(self):
        """Tuple (or other structured) keys fail loudly instead of
        being stringified into a collision-prone encoding."""
        from repro.batch.digest import digest_payload
        with pytest.raises(TypeError, match="digest payload keys"):
            digest_payload({(1, 2): "x"})

    def test_digest_is_stable_across_process_restarts(self):
        """The exact key survives a fresh interpreter (disk caches
        would silently never hit otherwise)."""
        here = job_digest(make_job())
        script = (
            "from repro.batch.digest import job_digest\n"
            "from repro.batch.jobs import BatchJob\n"
            "from repro.agu.model import AguSpec\n"
            f"job = BatchJob(name='example', spec=AguSpec(2, 1), "
            f"source={SOURCE!r}, n_iterations=8)\n"
            "print(job_digest(job))\n"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        there = subprocess.run(
            [sys.executable, "-c", script], env=env, check=True,
            capture_output=True, text=True).stdout.strip()
        assert here == there


class TestInMemoryLRUCache:
    def test_miss_then_hit(self):
        cache = InMemoryLRUCache()
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = InMemoryLRUCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        cache.get("a")          # refresh a; b is now LRU
        cache.put("c", {"v": 3})
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert len(cache) == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(BatchError):
            InMemoryLRUCache(capacity=0)

    def test_put_many_counts_one_store_per_entry(self):
        cache = InMemoryLRUCache()
        cache.put_many({"a": {"v": 1}, "b": {"v": 2}})
        assert cache.stats.stores == 2
        assert cache.get("a") == {"v": 1}
        cache.put_many({})
        assert cache.stats.stores == 2

    def test_stats_str(self):
        assert "0 hit(s)" in str(CacheStats())


class TestJsonFileCache:
    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "cache.json"
        first = JsonFileCache(path)
        first.put("k", {"x": 1})
        assert path.exists()
        second = JsonFileCache(path)
        assert second.get("k") == {"x": 1}
        assert second.stats.hits == 1

    def test_corrupt_store_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("{ not json")
        cache = JsonFileCache(path)
        assert len(cache) == 0
        cache.put("k", {"x": 1})
        assert JsonFileCache(path).get("k") == {"x": 1}

    def test_non_mapping_store_degrades_to_empty(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text(json.dumps(["not", "a", "mapping"]))
        assert len(JsonFileCache(path)) == 0

    def test_corrupt_entry_costs_only_itself(self, tmp_path):
        """Per-entry salvage: one bad value must not nuke the store."""
        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"good": {"x": 1}, "bad": "oops",
                                    "worse": [1, 2]}))
        cache = JsonFileCache(path)
        assert len(cache) == 1
        assert cache.get("good") == {"x": 1}
        assert cache.get("bad") is None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_store_is_sorted_json(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = JsonFileCache(path)
        cache.put("b", {"x": 1})
        cache.put("a", {"x": 2})
        assert list(json.loads(path.read_text())) == ["a", "b"]

    def test_put_many_is_one_write(self, tmp_path, monkeypatch):
        cache = JsonFileCache(tmp_path / "cache.json")
        flushes = []
        monkeypatch.setattr(cache, "_flush",
                            lambda: flushes.append(True))
        cache.put_many({"a": {"x": 1}, "b": {"x": 2}})
        assert len(flushes) == 1
        assert cache.stats.stores == 2
        cache.put_many({})
        assert len(flushes) == 1

    def test_engine_persists_a_batch_with_one_write(self, tmp_path,
                                                    monkeypatch):
        cache = JsonFileCache(tmp_path / "cache.json")
        flushes = []
        real_flush = cache._flush
        monkeypatch.setattr(
            cache, "_flush",
            lambda: (flushes.append(True), real_flush())[1])
        jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)
        BatchCompiler(cache=cache).compile(jobs)
        assert len(flushes) == 1
        assert len(JsonFileCache(cache.path)) == len(jobs)


class TestCachePayloadIsolation:
    """A caller mutating a payload must never corrupt cached state."""

    PAYLOAD = {"x": 1, "nested": {"y": 2}}

    def _mutate(self, payload: dict) -> None:
        payload["x"] = 99
        payload["nested"]["y"] = 99

    def test_lru_get_returns_a_defensive_copy(self):
        cache = InMemoryLRUCache()
        cache.put("k", dict(self.PAYLOAD))
        self._mutate(cache.get("k"))
        assert cache.get("k") == self.PAYLOAD

    def test_lru_put_detaches_from_the_caller(self):
        cache = InMemoryLRUCache()
        payload = {"x": 1, "nested": {"y": 2}}
        cache.put("k", payload)
        self._mutate(payload)
        assert cache.get("k") == self.PAYLOAD

    def test_json_get_returns_a_defensive_copy(self, tmp_path):
        cache = JsonFileCache(tmp_path / "cache.json")
        cache.put("k", {"x": 1, "nested": {"y": 2}})
        self._mutate(cache.get("k"))
        assert cache.get("k") == self.PAYLOAD

    def test_json_mutation_never_reaches_disk(self, tmp_path):
        path = tmp_path / "cache.json"
        cache = JsonFileCache(path)
        cache.put("k", {"x": 1, "nested": {"y": 2}})
        self._mutate(cache.get("k"))
        cache.put("other", {"z": 3})  # rewrites the whole store
        assert json.loads(path.read_text())["k"] == self.PAYLOAD

    def test_json_put_many_detaches_from_the_caller(self, tmp_path):
        cache = JsonFileCache(tmp_path / "cache.json")
        entries = {"k": {"x": 1, "nested": {"y": 2}}}
        cache.put_many(entries)
        self._mutate(entries["k"])
        assert cache.get("k") == self.PAYLOAD


class TestFlushFailure:
    def test_original_error_survives_cleanup_failure(self, tmp_path,
                                                     monkeypatch):
        """A failing temp-file unlink must not mask the write error."""
        import repro.batch.cache as cache_module

        cache = JsonFileCache(tmp_path / "cache.json")

        def explode(*args, **kwargs):
            raise ValueError("original write error")

        def bad_unlink(path):
            raise OSError("cleanup also failed")

        monkeypatch.setattr(cache_module.json, "dump", explode)
        monkeypatch.setattr(cache_module.os, "unlink", bad_unlink)
        with pytest.raises(ValueError, match="original write error"):
            cache.put("k", {"x": 1})

    def test_failed_flush_removes_its_temp_file(self, tmp_path,
                                                monkeypatch):
        import repro.batch.cache as cache_module

        cache = JsonFileCache(tmp_path / "cache.json")

        def explode(*args, **kwargs):
            raise ValueError("boom")

        monkeypatch.setattr(cache_module.json, "dump", explode)
        with pytest.raises(ValueError):
            cache.put("k", {"x": 1})
        assert not list(tmp_path.glob("*.tmp"))


class TestShardedDirectoryCache:
    def test_persists_across_instances_with_sharded_layout(self,
                                                           tmp_path):
        root = tmp_path / "store"
        digest = "ab12" + "0" * 60
        first = ShardedDirectoryCache(root)
        first.put(digest, {"x": 1})
        assert (root / "ab" / f"{digest}.json").exists()
        second = ShardedDirectoryCache(root)
        assert second.get(digest) == {"x": 1}
        assert second.stats.hits == 1
        assert len(second) == 1

    def test_miss_on_empty_and_corrupt_entries(self, tmp_path):
        cache = ShardedDirectoryCache(tmp_path / "store")
        assert cache.get("feed" * 16) is None
        cache.put("feed" * 16, {"x": 1})
        cache._entry_path("feed" * 16).write_text("{ not json")
        assert cache.get("feed" * 16) is None
        assert cache.stats.misses == 2

    def test_corrupt_entry_is_removed_not_raised(self, tmp_path):
        """A bad entry must be discarded so the recompiled result can
        take its place (and re-reads stop paying for the parse)."""
        cache = ShardedDirectoryCache(tmp_path / "store")
        digest = "feed" * 16
        cache.put(digest, {"x": 1})
        entry = cache._entry_path(digest)
        entry.write_text("{ not json")
        assert cache.get(digest) is None
        assert not entry.exists()
        cache.put(digest, {"x": 2})  # the slot is writable again
        assert cache.get(digest) == {"x": 2}

    def test_non_mapping_entry_is_removed(self, tmp_path):
        cache = ShardedDirectoryCache(tmp_path / "store")
        digest = "beef" * 16
        cache.put(digest, {"x": 1})
        entry = cache._entry_path(digest)
        entry.write_text(json.dumps([1, 2, 3]))
        assert cache.get(digest) is None
        assert not entry.exists()
        assert cache.stats.misses == 1

    def test_missing_entry_does_not_attempt_removal(self, tmp_path):
        cache = ShardedDirectoryCache(tmp_path / "store")
        assert cache.get("dead" * 16) is None
        assert cache.stats.misses == 1

    def test_discard_reverifies_before_unlinking(self, tmp_path):
        """The shared-store race: if a concurrent writer's atomic
        rename lands a valid entry before the discard fires, the
        discard must notice and spare it."""
        cache = ShardedDirectoryCache(tmp_path / "store")
        digest = "feed" * 16
        cache.put(digest, {"v": 1})
        cache._discard(cache._entry_path(digest))
        assert cache.get(digest) == {"v": 1}

    def test_unreadable_entry_is_a_miss_but_not_discarded(self,
                                                          tmp_path):
        """Only *provably corrupt* entries are removed.  A read that
        fails for other reasons (here: the path is a directory; in the
        field: a transient EIO/ESTALE on a shared mount) must not
        destroy what may be another host's valid entry."""
        cache = ShardedDirectoryCache(tmp_path / "store")
        digest = "cafe" * 16
        entry = cache._entry_path(digest)
        entry.mkdir(parents=True)
        assert cache.get(digest) is None
        assert cache.stats.misses == 1
        assert entry.exists()

    def test_put_many_counts_one_store_per_entry(self, tmp_path):
        cache = ShardedDirectoryCache(tmp_path / "store")
        cache.put_many({"a" * 64: {"v": 1}, "b" * 64: {"v": 2},
                        "c" * 64: {"v": 3}})
        assert cache.stats.stores == 3
        assert len(cache) == 3

    def test_unsafe_keys_are_hashed_to_file_names(self, tmp_path):
        cache = ShardedDirectoryCache(tmp_path / "store")
        # Slashes, leading dots: anything that could leave the root.
        for key in ("../escape/attempt", "..evil", ".hidden-entry"):
            cache.put(key, {"key": key})
            assert cache.get(key) == {"key": key}
            entry = cache._entry_path(key)
            assert entry.resolve().is_relative_to(
                (tmp_path / "store").resolve())
        assert not list(tmp_path.glob("*.json"))  # nothing beside root

    def test_engine_integration_cold_then_warm(self, tmp_path):
        root = tmp_path / "store"
        jobs = jobs_from_suite("core8", AguSpec(4, 1), n_iterations=4)
        cold = BatchCompiler(cache=ShardedDirectoryCache(root)) \
            .compile(jobs)
        assert cold.n_compiled == len(jobs)
        warm = BatchCompiler(cache=ShardedDirectoryCache(root)) \
            .compile(jobs)
        assert warm.n_cache_hits == len(jobs)
        assert warm.n_compiled == 0
        assert [r.total_cost for r in warm.results] \
            == [r.total_cost for r in cold.results]

    def test_concurrent_style_writes_do_not_clobber(self, tmp_path):
        """Two handles to one store (as two hosts would have)."""
        root = tmp_path / "store"
        left, right = ShardedDirectoryCache(root), \
            ShardedDirectoryCache(root)
        left.put("a" * 64, {"who": "left"})
        right.put("b" * 64, {"who": "right"})
        assert left.get("b" * 64) == {"who": "right"}
        assert right.get("a" * 64) == {"who": "left"}


class TestOpenCache:
    def test_spec_mapping(self, tmp_path):
        assert isinstance(open_cache("mem"), InMemoryLRUCache)
        sized = open_cache("mem:16")
        assert isinstance(sized, InMemoryLRUCache)
        assert sized.capacity == 16
        assert isinstance(open_cache(str(tmp_path / "store.json")),
                          JsonFileCache)
        assert isinstance(open_cache(f"json:{tmp_path / 'x'}"),
                          JsonFileCache)
        assert isinstance(open_cache(str(tmp_path / "store")),
                          ShardedDirectoryCache)
        assert isinstance(open_cache(f"dir:{tmp_path / 'y.json'}"),
                          ShardedDirectoryCache)

    # Table-driven scheme parsing: only *known* schemes are schemes.
    # Bare paths may contain colons (drive letters, odd file names)
    # and must open as paths, not be misparsed as scheme specs.
    BARE_PATH_SPECS = [
        (r"C:\cache", ShardedDirectoryCache),
        ("./odd:name", ShardedDirectoryCache),
        ("relative/plain", ShardedDirectoryCache),
        ("odd:name.json", JsonFileCache),
        (r"C:\cache\results.json", JsonFileCache),
        ("store.v2:final", ShardedDirectoryCache),
    ]

    @pytest.mark.parametrize("spec, expected", BARE_PATH_SPECS)
    def test_colon_bearing_bare_paths_open_as_paths(self, spec,
                                                    expected):
        cache = open_cache(spec)
        assert isinstance(cache, expected)
        target = cache.root if expected is ShardedDirectoryCache \
            else cache.path
        assert target == Path(spec)

    def test_existing_file_opens_as_a_json_store_regardless_of_name(
            self, tmp_path):
        """Backward compatibility: a store file written before the
        .json-suffix convention must keep opening as a file store (and
        keep its entries), not become a directory root that crashes on
        the first put."""
        legacy = tmp_path / "mycache"
        JsonFileCache(legacy).put("k", {"v": 1})
        reopened = open_cache(str(legacy))
        assert isinstance(reopened, JsonFileCache)
        assert reopened.get("k") == {"v": 1}

    def test_existing_non_store_file_is_refused_not_overwritten(
            self, tmp_path):
        """A typo'd bare-path spec naming a real user file must fail
        loudly, not silently replace the file with cache JSON."""
        precious = tmp_path / "notes.txt"
        precious.write_text("do not lose this")
        with pytest.raises(BatchError, match="refusing to touch"):
            open_cache(str(precious))
        assert precious.read_text() == "do not lose this"
        # Leading "{" proves nothing for suffix-less files: Nix/JSON5/
        # TeX-style content must be refused too, not salvaged-to-empty.
        nixish = tmp_path / "config.nix"
        nixish.write_text("{ pkgs, ... }: { services.x.enable = true; }")
        with pytest.raises(BatchError, match="refusing to touch"):
            open_cache(str(nixish))
        assert nixish.read_text().startswith("{ pkgs")

    def test_json_suffixed_non_store_data_is_refused_too(self,
                                                         tmp_path):
        """The .json suffix is no license to destroy user data: valid
        JSON that is not a store-shaped object (all values objects) is
        someone's file.  (Unparseable .json content still opens --
        that is the documented corrupt-store degrade-to-empty
        salvage.)"""
        data = tmp_path / "results.json"
        data.write_text(json.dumps(["precious", "user", "data"]))
        with pytest.raises(BatchError, match="refusing to touch"):
            open_cache(str(data))
        assert json.loads(data.read_text()) == ["precious", "user",
                                                "data"]
        # Object-shaped but with scalar values: a package.json, not a
        # store.
        pkg = tmp_path / "pkg.json"
        pkg.write_text(json.dumps({"name": "my-app", "version": "1.0",
                                   "scripts": {"build": "make"}}))
        with pytest.raises(BatchError, match="refusing to touch"):
            open_cache(str(pkg))
        assert json.loads(pkg.read_text())["name"] == "my-app"
        corrupt = tmp_path / "store.json"
        corrupt.write_text("{ not json")
        assert isinstance(open_cache(str(corrupt)), JsonFileCache)

    def test_unreadable_existing_path_is_refused_not_adopted(
            self, tmp_path):
        """A path that exists but cannot be read as a file must not be
        adopted as an empty store (the first put would rename cache
        JSON over data we could not even inspect)."""
        weird = tmp_path / "dir.json"
        weird.mkdir()
        with pytest.raises(BatchError, match="cannot be read"):
            open_cache(str(weird))
        secret = tmp_path / "secret.json"
        secret.write_text("who knows")
        secret.chmod(0)
        try:
            if not os.access(secret, os.R_OK):  # root reads anything
                with pytest.raises(BatchError, match="cannot be read"):
                    open_cache(str(secret))
        finally:
            secret.chmod(0o644)
        assert secret.read_text() == "who knows"

    def test_damaged_store_refusal_has_a_salvaging_escape_hatch(
            self, tmp_path):
        """A store whose file grew a non-dict value is refused on the
        bare path (indistinguishable from user data) -- but the
        json:PATH form the error suggests opens it with the usual
        per-entry salvage, so resume is never actually blocked."""
        damaged = tmp_path / "grid.json"
        damaged.write_text(json.dumps({"good": {"v": 1}, "bad": None}))
        with pytest.raises(BatchError, match="json:"):
            open_cache(str(damaged))
        salvaged = open_cache(f"json:{damaged}")
        assert isinstance(salvaged, JsonFileCache)
        assert salvaged.get("good") == {"v": 1}
        assert salvaged.get("bad") is None

    def test_adopted_store_file_serves_its_entries(self, tmp_path):
        """The existing-file path hands its parse to the store: the
        entries are served without a second load."""
        legacy = tmp_path / "grid.json"
        JsonFileCache(legacy).put_many({"a": {"v": 1}, "b": {"v": 2}})
        adopted = open_cache(str(legacy))
        assert isinstance(adopted, JsonFileCache)
        assert len(adopted) == 2
        assert adopted.get("a") == {"v": 1}

    def test_tcp_scheme_opens_a_remote_client(self):
        from repro.batch.service import RemoteCache

        remote = open_cache("tcp://127.0.0.1:8741")
        assert isinstance(remote, RemoteCache)
        assert (remote.host, remote.port) == ("127.0.0.1", 8741)
        default_host = open_cache("tcp://:8741")
        assert default_host.host == "127.0.0.1"
        v6 = open_cache("tcp://[::1]:8741")
        assert v6.host == "::1"

    def test_tcp_spec_client_options(self):
        remote = open_cache(
            "tcp://10.0.0.5:8741?timeout=2.5&retry_interval=0.5"
            "&batch_size=32")
        assert remote.timeout == 2.5
        assert remote.retry_interval == 0.5
        assert remote.batch_size == 32

    INVALID_SPECS = [
        "mem:notanumber",
        "tcp://hostonly",          # no port
        "tcp://host:port",         # non-numeric port
        "tcp://host:0",            # out-of-range port
        "tcp://host:8741?bogus=1",
        "tcp://host:8741?timeout=abc",
        "redis://somewhere:6379",  # unknown scheme, rejected loudly
        "s3://bucket/key",
        # URL-style typos of known single-colon schemes must not open
        # stores at //PATH (the filesystem root).
        "json://results.json",
        "dir://data",
        "mem://16",
    ]

    @pytest.mark.parametrize("spec", INVALID_SPECS)
    def test_invalid_specs_are_rejected(self, spec):
        with pytest.raises(BatchError):
            open_cache(spec)


class TestEngineCacheBehaviour:
    SPEC = AguSpec(4, 1)

    def test_hit_miss_accounting_through_the_engine(self):
        compiler = BatchCompiler()
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        first = compiler.compile(jobs)
        assert first.n_compiled == len(jobs)
        assert compiler.cache.stats.misses == len(jobs)
        second = compiler.compile(jobs)
        assert second.n_compiled == 0
        assert second.n_cache_hits == len(jobs)
        assert compiler.cache.stats.hits == len(jobs)

    def test_config_change_misses_the_cache(self):
        compiler = BatchCompiler()
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        compiler.compile(jobs)
        tighter = jobs_from_suite(
            "core8", self.SPEC, AllocatorConfig(exact_cover_limit=4),
            n_iterations=4)
        report = compiler.compile(tighter)
        assert report.n_cache_hits == 0
        assert report.n_compiled == len(tighter)

    def test_disk_cache_spans_engine_instances(self, tmp_path):
        path = tmp_path / "results.json"
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        cold = BatchCompiler(cache=JsonFileCache(path)).compile(jobs)
        assert cold.n_compiled == len(jobs)
        warm = BatchCompiler(cache=JsonFileCache(path)).compile(jobs)
        assert warm.n_cache_hits == len(jobs)
        assert warm.n_compiled == 0
        assert [r.total_cost for r in warm.results] \
            == [r.total_cost for r in cold.results]

    def test_malformed_cache_payload_is_recompiled(self, tmp_path):
        path = tmp_path / "results.json"
        jobs = jobs_from_suite("core8", self.SPEC, n_iterations=4)
        BatchCompiler(cache=JsonFileCache(path)).compile(jobs)
        store = json.loads(path.read_text())
        for digest in store:
            store[digest] = {"garbage": True}
        path.write_text(json.dumps(store))
        report = BatchCompiler(cache=JsonFileCache(path)).compile(jobs)
        assert report.n_cache_hits == 0
        assert report.all_audits_ok

    def test_duplicate_jobs_compile_once_per_batch(self):
        compiler = BatchCompiler()
        job = jobs_from_suite("core8", self.SPEC, n_iterations=4)[0]
        twin = BatchJob(name="twin", spec=job.spec, source=job.source,
                        n_iterations=4)
        report = compiler.compile([job, twin])
        assert report.n_jobs == 2
        assert report.n_compiled == 1
        assert report.n_cache_hits == 1
        assert report.result("twin").total_cost \
            == report.results[0].total_cost
