"""Unit tests for best-pair merging (the paper's phase 2)."""

import pytest

from repro.errors import AllocationError
from repro.ir.builder import pattern_from_offsets
from repro.merging.cost import CostModel, cover_cost
from repro.merging.greedy import best_pair_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.paths import Path, PathCover

from conftest import random_offsets


class TestPaperExample:
    def test_merge_to_two_registers(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        result = best_pair_merge(cover, 2, paper_pattern, 1)
        assert result.n_registers == 2
        assert result.total_cost == 2
        assert len(result.steps) == 1

    def test_merge_to_one_register(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        result = best_pair_merge(cover, 1, paper_pattern, 1)
        assert result.n_registers == 1
        assert result.total_cost == 5
        assert len(result.steps) == 2

    def test_no_merging_needed(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        result = best_pair_merge(cover, 3, paper_pattern, 1)
        assert result.cover == cover
        assert result.steps == ()
        assert result.total_cost == 0


class TestBehaviour:
    def test_each_step_reduces_path_count_by_one(self, paper_pattern):
        cover = PathCover.finest(7)
        result = best_pair_merge(cover, 2, paper_pattern, 1)
        assert len(result.steps) == 5
        assert result.n_registers == 2

    def test_total_cost_consistent_with_cover(self, rng):
        for _ in range(25):
            offsets = random_offsets(rng, rng.randint(4, 12))
            pattern = pattern_from_offsets(offsets)
            cover = PathCover.finest(len(offsets))
            k = rng.randint(1, 3)
            model = rng.choice(list(CostModel))
            result = best_pair_merge(cover, k, pattern, 1, model)
            assert result.total_cost == cover_cost(result.cover, pattern,
                                                   1, model)

    def test_deterministic(self, rng):
        offsets = random_offsets(rng, 10)
        pattern = pattern_from_offsets(offsets)
        cover = PathCover.finest(10)
        first = best_pair_merge(cover, 3, pattern, 1)
        second = best_pair_merge(cover, 3, pattern, 1)
        assert first.cover == second.cover
        assert first.steps == second.steps

    def test_steps_record_the_merged_paths(self, paper_pattern):
        cover = minimum_zero_cost_cover(paper_pattern, 1).cover
        result = best_pair_merge(cover, 2, paper_pattern, 1)
        step = result.steps[0]
        assert step.merged == step.left.merge(step.right)
        assert "C=" in str(step)

    def test_strategy_label(self, paper_pattern):
        cover = PathCover.finest(7)
        result = best_pair_merge(cover, 3, paper_pattern, 1)
        assert result.strategy == "best_pair"


class TestValidation:
    def test_zero_registers_rejected(self, paper_pattern):
        cover = PathCover.finest(7)
        with pytest.raises(AllocationError):
            best_pair_merge(cover, 0, paper_pattern, 1)

    def test_mismatched_cover_rejected(self, paper_pattern):
        cover = PathCover.finest(5)
        with pytest.raises(AllocationError, match="5 accesses"):
            best_pair_merge(cover, 2, paper_pattern, 1)

    def test_single_path_cover_is_stable(self):
        pattern = pattern_from_offsets([0, 1])
        cover = PathCover((Path((0, 1)),), 2)
        result = best_pair_merge(cover, 1, pattern, 1)
        assert result.cover == cover
