"""Unit tests for the exhaustive optimal allocator (EXP-A3 oracle)."""

import itertools
import random

import pytest

from repro.errors import AllocationError
from repro.ir.builder import pattern_from_offsets
from repro.merging.cost import CostModel, cover_cost
from repro.merging.exhaustive import optimal_allocation
from repro.pathcover.paths import PathCover


def brute_force_cost(pattern, n_registers, modify_range, model):
    """Reference optimum via raw enumeration of register assignments."""
    n = len(pattern)
    best = None
    for assignment in itertools.product(range(n_registers), repeat=n):
        groups: dict[int, list[int]] = {}
        for position, register in enumerate(assignment):
            groups.setdefault(register, []).append(position)
        cover = PathCover.from_lists(groups.values(), n)
        cost = cover_cost(cover, pattern, modify_range, model)
        if best is None or cost < best:
            best = cost
    return best


class TestSmallInstances:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_raw_enumeration(self, seed):
        rng = random.Random(seed)
        n = rng.randint(1, 6)
        k = rng.randint(1, 3)
        m = rng.choice([1, 2])
        model = rng.choice(list(CostModel))
        pattern = pattern_from_offsets(
            [rng.randint(-3, 3) for _ in range(n)])
        result = optimal_allocation(pattern, k, m, model)
        assert result.proven_optimal
        assert result.total_cost == brute_force_cost(pattern, k, m, model)

    def test_paper_example_with_two_registers(self, paper_pattern):
        result = optimal_allocation(paper_pattern, 2, 1)
        assert result.total_cost == 2  # matches the heuristic here

    def test_paper_example_with_three_registers_is_free(self, paper_pattern):
        result = optimal_allocation(paper_pattern, 3, 1)
        assert result.total_cost == 0

    def test_cost_consistent_with_cover(self, paper_pattern):
        result = optimal_allocation(paper_pattern, 2, 1)
        assert result.total_cost == cover_cost(result.cover,
                                               paper_pattern, 1)


class TestEdgeCases:
    def test_empty_pattern(self):
        result = optimal_allocation(pattern_from_offsets([]), 2, 1)
        assert result.total_cost == 0
        assert result.cover.n_paths == 0

    def test_more_registers_than_accesses(self):
        pattern = pattern_from_offsets([0, 5])
        result = optimal_allocation(pattern, 10, 1)
        assert result.cover.n_paths <= 2

    def test_zero_registers_rejected(self, paper_pattern):
        with pytest.raises(AllocationError):
            optimal_allocation(paper_pattern, 0, 1)

    def test_intra_model_ignores_wrap(self):
        pattern = pattern_from_offsets([0], step=5)
        assert optimal_allocation(pattern, 1, 1,
                                  CostModel.INTRA).total_cost == 0
        assert optimal_allocation(pattern, 1, 1,
                                  CostModel.STEADY_STATE).total_cost == 1

    def test_more_registers_never_hurt(self, rng):
        pattern = pattern_from_offsets([rng.randint(-4, 4)
                                        for _ in range(8)])
        costs = [optimal_allocation(pattern, k, 1).total_cost
                 for k in (1, 2, 3)]
        assert costs[0] >= costs[1] >= costs[2]
