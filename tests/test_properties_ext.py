"""Property-based tests for the extensions (modreg, reorder, trace)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.agu.model import AguSpec
from repro.ir.builder import pattern_from_offsets
from repro.ir.expr import AffineExpr
from repro.ir.types import AccessPattern, ArrayAccess
from repro.merging.cost import cover_cost
from repro.modreg.selection import residual_cost, select_modify_values
from repro.pathcover.paths import PathCover
from repro.reorder.dependence import dependence_edges, is_valid_order
from repro.reorder.search import greedy_chain_order, reorder_pattern
from repro.workloads.trace import format_trace, parse_trace

offsets_lists = st.lists(st.integers(-8, 8), min_size=1, max_size=12)


@st.composite
def rich_patterns(draw):
    """Patterns with multiple arrays, coefficients, writes, and steps."""
    n = draw(st.integers(1, 10))
    step = draw(st.sampled_from([1, 2, -1]))
    accesses = []
    for _ in range(n):
        array = draw(st.sampled_from(["A", "B"]))
        coefficient = draw(st.sampled_from([0, 1, 2]))
        offset = draw(st.integers(-6, 6))
        write = draw(st.booleans())
        accesses.append(ArrayAccess(array, AffineExpr(coefficient, offset),
                                    is_write=write))
    return AccessPattern(tuple(accesses), step=step)


class TestTraceProperties:
    @settings(max_examples=60)
    @given(rich_patterns())
    def test_round_trip(self, pattern):
        assert parse_trace(format_trace(pattern)) == pattern

    @settings(max_examples=30)
    @given(rich_patterns())
    def test_text_is_line_per_access_plus_header(self, pattern):
        text = format_trace(pattern)
        lines = [line for line in text.splitlines() if line.strip()]
        assert len(lines) == len(pattern) + 1


class TestModRegProperties:
    @settings(max_examples=40)
    @given(offsets_lists, st.integers(0, 4))
    def test_residual_never_exceeds_plain_cost(self, offsets, n_mrs):
        pattern = pattern_from_offsets(offsets)
        cover = PathCover.from_lists([range(len(offsets))], len(offsets))
        values = select_modify_values(cover, pattern, 1, n_mrs)
        assert len(values) <= n_mrs
        assert residual_cost(cover, pattern, 1, values) <= \
            cover_cost(cover, pattern, 1)

    @settings(max_examples=40)
    @given(offsets_lists)
    def test_residual_monotone_in_register_count(self, offsets):
        pattern = pattern_from_offsets(offsets)
        cover = PathCover.from_lists([range(len(offsets))], len(offsets))
        residuals = [
            residual_cost(cover, pattern, 1,
                          select_modify_values(cover, pattern, 1, n_mrs))
            for n_mrs in range(5)
        ]
        assert residuals == sorted(residuals, reverse=True)

    @settings(max_examples=40)
    @given(offsets_lists)
    def test_selected_values_are_outside_modify_range(self, offsets):
        pattern = pattern_from_offsets(offsets)
        cover = PathCover.from_lists([range(len(offsets))], len(offsets))
        for value in select_modify_values(cover, pattern, 1, 4):
            assert abs(value) > 1


class TestReorderProperties:
    @settings(max_examples=40, deadline=None)
    @given(rich_patterns())
    def test_greedy_chain_order_is_valid(self, pattern):
        order = greedy_chain_order(pattern, 1)
        assert sorted(order) == list(range(len(pattern)))
        assert is_valid_order(order, dependence_edges(pattern))

    @settings(max_examples=25, deadline=None)
    @given(rich_patterns())
    def test_reordered_pattern_preserves_multiset(self, pattern):
        order = greedy_chain_order(pattern, 1)
        permuted = reorder_pattern(pattern, order)
        assert sorted(map(str, permuted)) == sorted(map(str, pattern))

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(-5, 5), min_size=2, max_size=8))
    def test_full_search_never_worse(self, offsets):
        from repro.reorder.search import reorder_accesses
        pattern = pattern_from_offsets(offsets)
        result = reorder_accesses(pattern, AguSpec(2, 1))
        assert result.cost <= result.baseline_cost
