"""The inter-procedural engine under the project rules, unit-tested.

``tools/lint/project.py`` (name resolution, the class/method index,
call resolution, the lock model) and the :mod:`lint.asthelpers`
edge cases the rules lean on get direct coverage here -- the
rule-level fixtures in ``test_lint.py`` prove the diagnostics fire,
these tests pin the model they fire *from*.  The generated
``docs/PROTOCOL.md`` freshness gate is exercised last, the same way
CI runs it.
"""

from __future__ import annotations

import ast
import subprocess
import sys
import textwrap
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "tools"))

from lint import suppressions  # noqa: E402
from lint.asthelpers import (  # noqa: E402
    call_name,
    constant_str,
    dotted_name,
    exception_names,
    has_bare_reraise,
    has_raise,
    keyword_names,
    self_attribute,
    walk_functions,
)
from lint.project import (  # noqa: E402
    ClassInfo,
    FunctionUnit,
    Project,
    module_name,
    walk_within,
)
from lint.registry import Module  # noqa: E402


def make_project(sources: dict[str, str]) -> Project:
    """A :class:`Project` over in-memory modules (no memo, no disk)."""
    modules = []
    for relpath, source in sources.items():
        source = textwrap.dedent(source)
        modules.append(Module(
            path=Path(relpath), relpath=relpath, source=source,
            tree=ast.parse(source),
            suppressions=suppressions.collect(source)))
    return Project(modules)


def unit_call(project: Project, unit: FunctionUnit,
              ) -> FunctionUnit | None:
    """Resolve the first call expression inside ``unit``."""
    for node in walk_within(unit.node):
        if isinstance(node, ast.Call):
            return project.resolve_call(unit, node)
    return None


# ----------------------------------------------------------------------
# Module naming and imports
# ----------------------------------------------------------------------
class TestNameResolution:
    def test_module_names_strip_import_roots(self):
        assert module_name("src/repro/batch/service.py") == \
            "repro.batch.service"
        assert module_name("tools/lint/project.py") == "lint.project"
        assert module_name("src/repro/batch/__init__.py") == \
            "repro.batch"
        assert module_name("benchmarks/run.py") == "benchmarks.run"

    def test_from_import_resolves_to_defining_class(self):
        project = make_project({
            "src/proj/core.py": """
                class Engine:
                    def run(self):
                        pass
                """,
            "src/app.py": "from proj.core import Engine\n",
        })
        resolved = project.resolve_symbol("app", "Engine")
        assert isinstance(resolved, ClassInfo)
        assert resolved.qualname == "proj.core.Engine"

    def test_reexport_through_package_init_is_followed(self):
        project = make_project({
            "src/pkg/__init__.py": "from pkg.core import Engine\n",
            "src/pkg/core.py": """
                class Engine:
                    def run(self):
                        pass
                """,
            "src/app.py": "from pkg import Engine\n",
        })
        resolved = project.resolve_symbol("app", "Engine")
        assert isinstance(resolved, ClassInfo)
        assert resolved.qualname == "pkg.core.Engine"

    def test_relative_import_resolves_inside_the_package(self):
        project = make_project({
            "src/pkg/__init__.py": "",
            "src/pkg/core.py": """
                class Engine:
                    def run(self):
                        pass
                """,
            "src/pkg/front.py": "from .core import Engine\n",
        })
        resolved = project.resolve_symbol("pkg.front", "Engine")
        assert isinstance(resolved, ClassInfo)
        assert resolved.qualname == "pkg.core.Engine"

    def test_unknown_names_resolve_to_none(self):
        project = make_project({
            "src/app.py": "import os\nfrom missing import thing\n",
        })
        assert project.resolve_symbol("app", "thing") is None
        assert project.resolve_symbol("app", "os.path.join") is None


# ----------------------------------------------------------------------
# Call resolution
# ----------------------------------------------------------------------
class TestCallResolution:
    def test_attribute_chained_call_through_learned_attr_type(self):
        project = make_project({
            "src/proj/store.py": """
                class Store:
                    def save(self):
                        pass
                """,
            "src/proj/engine.py": """
                from proj.store import Store
                class Engine:
                    def __init__(self):
                        self._store = Store()
                    def flush(self):
                        self._store.save()
                """,
        })
        engine = project.classes_by_qualname["proj.engine.Engine"]
        callee = unit_call(project, engine.methods["flush"])
        assert callee is not None
        assert callee.qualname == "proj.store.Store.save"

    def test_self_call_resolves_through_base_classes(self):
        project = make_project({
            "src/proj/base.py": """
                class Base:
                    def step(self):
                        pass
                """,
            "src/proj/derived.py": """
                from proj.base import Base
                class Derived(Base):
                    def run(self):
                        self.step()
                """,
        })
        derived = project.classes_by_qualname["proj.derived.Derived"]
        callee = unit_call(project, derived.methods["run"])
        assert callee is not None
        assert callee.qualname == "proj.base.Base.step"

    def test_nested_closure_is_a_unit_bound_to_the_class(self):
        project = make_project({
            "src/proj/serve.py": """
                class Server:
                    def tick(self):
                        pass
                    def serve(self):
                        def worker():
                            self.tick()
                        worker()
                """,
        })
        server = project.classes_by_qualname["proj.serve.Server"]
        serve = server.methods["serve"]
        worker = serve.children["worker"]
        assert worker.qualname == \
            "proj.serve.Server.serve.<locals>.worker"
        assert worker.cls is server
        # The bare-name call in serve() lands in the closure...
        assert unit_call(project, serve) is worker
        # ...and the closure's self.tick() resolves through the class.
        callee = unit_call(project, worker)
        assert callee is server.methods["tick"]

    def test_async_methods_are_indexed_like_sync_ones(self):
        project = make_project({
            "src/proj/pump.py": """
                class Pump:
                    async def drain(self):
                        pass
                    async def cycle(self):
                        await self.drain()
                async def main():
                    pass
                """,
        })
        pump = project.classes_by_qualname["proj.pump.Pump"]
        assert set(pump.methods) == {"drain", "cycle"}
        assert "main" in project.functions["proj.pump"]
        callee = unit_call(project, pump.methods["cycle"])
        assert callee is pump.methods["drain"]

    def test_constructor_call_resolves_to_init(self):
        project = make_project({
            "src/proj/core.py": """
                class Engine:
                    def __init__(self):
                        pass
                def build():
                    return Engine()
                """,
        })
        build = project.functions["proj.core"]["build"]
        callee = unit_call(project, build)
        assert callee is not None
        assert callee.qualname == "proj.core.Engine.__init__"


# ----------------------------------------------------------------------
# The lock model
# ----------------------------------------------------------------------
class TestLockModel:
    def test_condition_alias_canonicalizes_to_wrapped_lock(self):
        project = make_project({
            "src/proj/server.py": """
                import threading
                class Server:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition(self._lock)
                """,
        })
        server = project.classes_by_qualname["proj.server.Server"]
        assert server.resolve_lock("_cond") == ("_lock", False)
        assert server.resolve_lock("_lock") == ("_lock", False)
        assert server.resolve_lock("_other") is None

    def test_bare_condition_is_reentrant(self):
        project = make_project({
            "src/proj/server.py": """
                import threading
                class Server:
                    def __init__(self):
                        self._cond = threading.Condition()
                """,
        })
        server = project.classes_by_qualname["proj.server.Server"]
        assert server.resolve_lock("_cond") == ("_cond", True)

    def test_alias_reentry_is_a_self_deadlock(self):
        project = make_project({
            "src/proj/server.py": """
                import threading
                class Server:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition(self._lock)
                    def wake(self):
                        with self._cond:
                            pass
                    def outer(self):
                        with self._lock:
                            self.wake()
                """,
        })
        model = project.lock_model()
        assert len(model.self_deadlocks) == 1
        dead = model.self_deadlocks[0]
        assert dead.lock.attr == "_lock"
        assert dead.unit.label == "Server.outer"

    def test_transitive_edges_carry_the_call_path(self):
        project = make_project({
            "src/proj/server.py": """
                import threading
                class Server:
                    def __init__(self):
                        self._a = threading.Lock()
                        self._b = threading.Lock()
                    def inner(self):
                        with self._b:
                            pass
                    def relay(self):
                        self.inner()
                    def outer(self):
                        with self._a:
                            self.relay()
                """,
        })
        model = project.lock_model()
        [(edge, witnesses)] = list(model.edges.items())
        held, acquired = edge
        assert held.attr == "_a" and acquired.attr == "_b"
        assert witnesses[0].path == (
            "proj.server.Server.outer", "proj.server.Server.relay",
            "proj.server.Server.inner")
        assert "while holding" in witnesses[0].describe()


# ----------------------------------------------------------------------
# asthelpers edge cases
# ----------------------------------------------------------------------
class TestAstHelpers:
    def test_dotted_name_handles_chains_and_rejects_calls(self):
        assert dotted_name(ast.parse("a.b.c", mode="eval").body) == \
            "a.b.c"
        assert dotted_name(ast.parse("a", mode="eval").body) == "a"
        # A subscript or call in the chain breaks the spelling.
        assert dotted_name(ast.parse("a[0].b", mode="eval").body) is None
        assert dotted_name(ast.parse("f().b", mode="eval").body) is None

    def test_call_name_on_attribute_chained_calls(self):
        call = ast.parse("self.cache.get(key)", mode="eval").body
        assert call_name(call) == "self.cache.get"
        curried = ast.parse("factory()(key)", mode="eval").body
        assert call_name(curried) is None

    def test_self_attribute_requires_exactly_self_dot_attr(self):
        assert self_attribute(
            ast.parse("self.lock", mode="eval").body) == "lock"
        assert self_attribute(
            ast.parse("other.lock", mode="eval").body) is None
        assert self_attribute(
            ast.parse("self.a.b", mode="eval").body) is None

    def test_keyword_names_marks_double_star_splats(self):
        call = ast.parse("f(a=1, **rest)", mode="eval").body
        assert keyword_names(call) == {"a", "**"}

    def test_constant_str_only_accepts_string_literals(self):
        assert constant_str(
            ast.parse("'op'", mode="eval").body) == "op"
        assert constant_str(ast.parse("42", mode="eval").body) is None
        assert constant_str(None) is None

    def test_walk_functions_includes_async_and_nested_defs(self):
        tree = ast.parse(
            "async def top():\n"
            "    def inner():\n"
            "        pass\n"
            "fn = lambda: (lambda: 1)()\n")
        names = [node.name for node in walk_functions(tree)]
        assert names == ["top", "inner"]

    def test_walk_within_does_not_descend_into_nested_scopes(self):
        tree = ast.parse(
            "def outer():\n"
            "    a = 1\n"
            "    def inner():\n"
            "        b = 2\n"
            "    c = (lambda: 3)()\n")
        outer = tree.body[0]
        names = {node.id for node in walk_within(outer)
                 if isinstance(node, ast.Name)
                 and isinstance(node.ctx, ast.Store)}
        assert names == {"a", "c"}

    def test_raise_classification_in_handlers(self):
        handler = ast.parse(
            "try:\n    x()\nexcept (OSError, ValueError) as error:\n"
            "    raise RuntimeError('wrapped') from error\n"
        ).body[0].handlers[0]
        assert exception_names(handler) == {"OSError", "ValueError"}
        assert has_raise(handler)
        assert not has_bare_reraise(handler)
        bare = ast.parse(
            "try:\n    x()\nexcept BaseException:\n    raise\n"
        ).body[0].handlers[0]
        assert exception_names(bare) == {"BaseException"}
        assert has_bare_reraise(bare)


# ----------------------------------------------------------------------
# The generated protocol reference
# ----------------------------------------------------------------------
class TestProtocolDoc:
    def test_committed_document_is_fresh(self):
        completed = subprocess.run(
            [sys.executable, str(ROOT / "tools" / "gen_protocol.py"),
             "--check"],
            capture_output=True, text=True, timeout=300)
        assert completed.returncode == 0, (
            completed.stderr or completed.stdout)

    def test_document_covers_the_live_protocol(self):
        text = (ROOT / "docs" / "PROTOCOL.md").read_text(
            encoding="utf-8")
        assert "GENERATED FILE" in text
        for op in ("lease", "submit", "compile", "get_many",
                   "put_many"):
            assert f'`op: "{op}"`' in text
        assert "## Event frames" in text
        for kind in ("result", "failed", "heartbeat", "done",
                     "aborted"):
            assert f"`{kind}`" in text
