"""Executable-README gate: every fenced ``python`` block in README.md
runs, verbatim, in a scratch directory.

A block can opt out with an HTML comment anywhere before its fence:
``<!-- readme-test: skip -->`` (for illustrative fragments that need
external services).  Bash blocks are documentation-only and are not
executed here -- the CLI smokes in CI cover those flows.
"""

from __future__ import annotations

from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[1] / "README.md"

SKIP_MARKER = "<!-- readme-test: skip -->"


def python_blocks() -> list[tuple[int, str]]:
    """``(starting line, source)`` of every runnable python block."""
    blocks: list[tuple[int, str]] = []
    lines = README.read_text().splitlines()
    in_block = False
    skip_next = False
    block_skipped = False
    start = 0
    current: list[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block:
            if stripped == SKIP_MARKER:
                skip_next = True
            elif stripped == "```python":
                in_block = True
                block_skipped = skip_next
                skip_next = False
                start = number + 1
                current = []
        elif stripped == "```":
            in_block = False
            if not block_skipped:
                blocks.append((start, "\n".join(current)))
        else:
            current.append(line)
    return blocks


BLOCKS = python_blocks()


def test_readme_has_runnable_examples():
    """Guard against the extractor silently matching nothing."""
    assert len(BLOCKS) >= 4


@pytest.mark.parametrize(
    "start,source", BLOCKS,
    ids=[f"README-L{start}" for start, _source in BLOCKS])
def test_readme_block_executes(start, source, tmp_path, monkeypatch):
    """Each block runs in its own namespace and scratch cwd, so
    examples may write relative paths like ``results/cache.json``."""
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": "__readme__"}
    exec(compile(source, f"README.md:{start}", "exec"), namespace)
