"""Unit tests for general offset assignment (GOA)."""

import pytest

from repro.errors import OffsetAssignmentError
from repro.offset.goa import (
    goa_cost,
    goa_first_use,
    goa_greedy,
    optimal_goa,
)
from repro.offset.sequence import AccessSequence, random_sequence


class TestGoaCost:
    def test_projected_costs_summed(self):
        seq = AccessSequence(("a", "b", "c", "a", "b", "c"))
        # One register for {a, b}, one for {c}: the c register never
        # moves; a<->b alternates between neighbours.
        assert goa_cost((("a", "b"), ("c",)), seq) == 0

    def test_partition_must_cover_all_variables(self):
        seq = AccessSequence(("a", "b"))
        with pytest.raises(OffsetAssignmentError, match="misses"):
            goa_cost((("a",),), seq)

    def test_partition_must_not_overlap(self):
        seq = AccessSequence(("a", "b"))
        with pytest.raises(OffsetAssignmentError, match="two groups"):
            goa_cost((("a", "b"), ("b",)), seq)


class TestPartitioners:
    def test_first_use_round_robin(self):
        seq = AccessSequence(("a", "b", "c", "d"))
        result = goa_first_use(seq, 2)
        assert result.n_registers == 2
        groups = [set(group) for group in result.groups]
        assert {"a", "c"} in groups and {"b", "d"} in groups

    def test_greedy_with_one_register_is_soa(self):
        seq = random_sequence(6, 24, seed=2)
        result = goa_greedy(seq, 1)
        assert result.n_registers == 1
        assert sorted(result.groups[0]) == sorted(seq.variables())

    def test_greedy_never_uses_more_than_k(self):
        seq = random_sequence(8, 30, seed=4)
        for k in (1, 2, 3):
            assert goa_greedy(seq, k).n_registers <= k

    def test_greedy_beats_first_use_on_aggregate(self):
        total_greedy = 0
        total_baseline = 0
        for seed in range(15):
            seq = random_sequence(7, 30, seed=seed, locality=0.4)
            total_greedy += goa_greedy(seq, 2).cost
            total_baseline += goa_first_use(seq, 2).cost
        assert total_greedy <= total_baseline

    def test_more_registers_never_hurt_greedy(self):
        seq = random_sequence(8, 36, seed=11)
        costs = [goa_greedy(seq, k).cost for k in (1, 2, 4)]
        assert costs[0] >= costs[1] >= costs[2]

    def test_result_cost_is_consistent(self):
        seq = random_sequence(6, 20, seed=7)
        result = goa_greedy(seq, 2)
        assert result.cost == goa_cost(result.groups, seq)

    def test_empty_sequence(self):
        result = goa_greedy(AccessSequence(()), 3)
        assert result.cost == 0
        assert result.groups == ()

    def test_invalid_register_count(self):
        seq = AccessSequence(("a",))
        with pytest.raises(OffsetAssignmentError):
            goa_greedy(seq, 0)
        with pytest.raises(OffsetAssignmentError):
            goa_first_use(seq, 0)


class TestOptimalGoa:
    def test_floors_the_heuristics(self):
        for seed in range(12):
            seq = random_sequence(5, 18, seed=seed, locality=0.4)
            for k in (1, 2, 3):
                best = optimal_goa(seq, k)
                assert best.cost <= goa_greedy(seq, k).cost
                assert best.cost <= goa_first_use(seq, k).cost

    def test_k1_equals_optimal_soa(self):
        from repro.offset.soa import assignment_cost, optimal_assignment
        seq = random_sequence(5, 20, seed=3)
        best = optimal_goa(seq, 1)
        assert best.cost == assignment_cost(optimal_assignment(seq), seq)

    def test_partition_is_valid(self):
        seq = random_sequence(5, 15, seed=9)
        best = optimal_goa(seq, 2)
        names = sorted(name for group in best.groups for name in group)
        assert names == sorted(seq.variables())
        assert best.cost == goa_cost(best.groups, seq)

    def test_monotone_in_k(self):
        seq = random_sequence(6, 24, seed=4, locality=0.3)
        costs = [optimal_goa(seq, k).cost for k in (1, 2, 3)]
        assert costs == sorted(costs, reverse=True)

    def test_guard(self):
        seq = AccessSequence(tuple(f"v{i}" for i in range(9)))
        with pytest.raises(OffsetAssignmentError, match="exceed"):
            optimal_goa(seq, 2)

    def test_empty(self):
        assert optimal_goa(AccessSequence(()), 2).cost == 0
