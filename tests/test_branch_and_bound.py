"""Unit tests for the exact minimum zero-cost cover (phase 1)."""

import random

import pytest

from repro.errors import InfeasibleZeroCostCover
from repro.graph.access_graph import AccessGraph
from repro.ir.builder import LoopBuilder, pattern_from_offsets
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.pathcover.paths import Path
from repro.pathcover.verify import is_zero_cost_path

from conftest import random_offsets


def brute_force_k_tilde(pattern, modify_range) -> int | None:
    """Reference: smallest zero-cost cover size by full enumeration."""
    n = len(pattern)
    best: list[int | None] = [None]

    def recurse(position: int, groups: list[list[int]]) -> None:
        if best[0] is not None and len(groups) >= best[0]:
            return
        if position == n:
            paths = [Path(tuple(group)) for group in groups]
            if all(is_zero_cost_path(path, pattern, modify_range)
                   for path in paths):
                best[0] = len(groups)
            return
        for group in groups:
            group.append(position)
            recurse(position + 1, groups)
            group.pop()
        groups.append([position])
        recurse(position + 1, groups)
        groups.pop()

    recurse(0, [])
    return best[0]


class TestPaperExample:
    def test_k_tilde_is_three(self, paper_pattern):
        result = minimum_zero_cost_cover(paper_pattern, 1)
        assert result.k_tilde == 3
        assert result.optimal

    def test_cover_is_zero_cost(self, paper_pattern):
        result = minimum_zero_cost_cover(paper_pattern, 1)
        for path in result.cover:
            assert is_zero_cost_path(path, paper_pattern, 1)

    def test_bounds_bracket_the_answer(self, paper_pattern):
        result = minimum_zero_cost_cover(paper_pattern, 1)
        assert result.lower_bound <= result.k_tilde <= result.upper_bound

    def test_wider_range_collapses_cover(self, paper_pattern):
        result = minimum_zero_cost_cover(paper_pattern, 4)
        assert result.k_tilde == 1


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(25))
    def test_small_random_instances(self, seed):
        rng = random.Random(seed)
        offsets = random_offsets(rng, rng.randint(1, 8), span=4)
        m = rng.choice([1, 2])
        pattern = pattern_from_offsets(offsets)
        result = minimum_zero_cost_cover(pattern, m)
        assert result.optimal
        assert result.k_tilde == brute_force_k_tilde(pattern, m)


class TestDecomposition:
    def test_multi_array_sums_per_group(self):
        builder = LoopBuilder()
        for offset in [0, 1, 2]:
            builder.read("x", offset)
        for offset in [5, 6]:
            builder.read("y", offset)
        pattern = builder.build_pattern()
        result = minimum_zero_cost_cover(pattern, 1)
        x_alone = minimum_zero_cost_cover(
            pattern_from_offsets([0, 1, 2], array="x"), 1)
        y_alone = minimum_zero_cost_cover(
            pattern_from_offsets([5, 6], array="y"), 1)
        assert result.k_tilde == x_alone.k_tilde + y_alone.k_tilde

    def test_paths_never_cross_arrays(self):
        pattern = (LoopBuilder().read("x", 0).read("y", 0).read("x", 1)
                   .read("y", 1).build_pattern())
        result = minimum_zero_cost_cover(pattern, 1)
        for path in result.cover:
            arrays = {pattern[position].array for position in path}
            assert len(arrays) == 1

    def test_coefficient_groups_are_separate(self):
        pattern = (LoopBuilder().read("x", 0, coefficient=2)
                   .read("x", 1, coefficient=2)
                   .read("x", 0, coefficient=1).build_pattern())
        result = minimum_zero_cost_cover(pattern, 2)
        for path in result.cover:
            coefficients = {pattern[p].coefficient for p in path}
            assert len(coefficients) == 1


class TestFeasibilityEdgeCases:
    def test_empty_pattern(self):
        result = minimum_zero_cost_cover(pattern_from_offsets([]), 1)
        assert result.k_tilde == 0
        assert result.optimal

    def test_infeasible_singleton(self):
        # coefficient 2, M=1: even one access cannot wrap for free and
        # no pairing helps (single access).
        pattern = (LoopBuilder().read("x", 0, coefficient=2)
                   .build_pattern())
        with pytest.raises(InfeasibleZeroCostCover):
            minimum_zero_cost_cover(pattern, 1)

    def test_pairing_rescues_large_coefficient(self):
        # x[2i] and x[2i+1]: singletons wrap at distance 2 > 1, but the
        # pair (both on one register) wraps at distance 1.  The B&B must
        # find this even though the greedy heuristic cannot.
        pattern = (LoopBuilder().read("x", 0, coefficient=2)
                   .read("x", 1, coefficient=2).build_pattern())
        result = minimum_zero_cost_cover(pattern, 1)
        assert result.k_tilde == 1

    def test_big_step_infeasible(self):
        pattern = pattern_from_offsets([0, 1], step=5)
        with pytest.raises(InfeasibleZeroCostCover):
            minimum_zero_cost_cover(pattern, 1)


class TestTightBounds:
    """The opt-in forced-open suffix bound (``tight_bounds=True``)."""

    def test_same_answer_with_fewer_or_equal_nodes(self, rng):
        """The tight bound may only remove provably fruitless
        subtrees: identical cover size, bounds and optimality, and a
        node count that never grows."""
        legacy_nodes = 0
        tight_nodes = 0
        for seed in range(30):
            case_rng = random.Random(seed)
            offsets = random_offsets(case_rng,
                                     case_rng.randint(4, 16),
                                     span=case_rng.randint(2, 6))
            pattern = pattern_from_offsets(offsets)
            modify_range = case_rng.randint(1, 3)
            try:
                legacy = minimum_zero_cost_cover(pattern, modify_range)
            except InfeasibleZeroCostCover:
                with pytest.raises(InfeasibleZeroCostCover):
                    minimum_zero_cost_cover(pattern, modify_range,
                                            tight_bounds=True)
                continue
            tight = minimum_zero_cost_cover(pattern, modify_range,
                                            tight_bounds=True)
            assert tight.k_tilde == legacy.k_tilde
            assert tight.optimal == legacy.optimal
            assert tight.lower_bound == legacy.lower_bound
            assert tight.upper_bound == legacy.upper_bound
            assert tight.nodes_explored <= legacy.nodes_explored
            legacy_nodes += legacy.nodes_explored
            tight_nodes += tight.nodes_explored
        assert tight_nodes <= legacy_nodes

    def test_default_search_is_legacy(self, rng):
        """``tight_bounds`` stays opt-in: the default node count is
        part of EXP-A1's golden-pinned measurements."""
        offsets = random_offsets(random.Random(7), 14, span=4)
        pattern = pattern_from_offsets(offsets)
        default = minimum_zero_cost_cover(pattern, 1)
        explicit = minimum_zero_cost_cover(pattern, 1,
                                           tight_bounds=False)
        assert default.nodes_explored == explicit.nodes_explored
        assert default.k_tilde == explicit.k_tilde


class TestBudget:
    def test_tiny_budget_still_returns_greedy_quality(self, rng):
        offsets = random_offsets(rng, 18, span=5)
        pattern = pattern_from_offsets(offsets)
        graph = AccessGraph(pattern, 1)
        result = minimum_zero_cost_cover(pattern, 1, node_budget=5)
        # With almost no budget the incumbent is the greedy cover.
        assert result.k_tilde <= greedy_zero_cost_cover(graph).n_paths
        assert result.k_tilde >= intra_cover_lower_bound(graph)

    def test_budget_exhaustion_flagged(self, rng):
        # A large instance with a tight budget should report non-proven
        # optimality (unless greedy already matches the lower bound).
        offsets = random_offsets(rng, 30, span=3)
        pattern = pattern_from_offsets(offsets)
        result = minimum_zero_cost_cover(pattern, 1, node_budget=3)
        graph = AccessGraph(pattern, 1)
        if result.k_tilde != intra_cover_lower_bound(graph):
            assert not result.optimal
