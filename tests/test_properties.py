"""Property-based tests (hypothesis) on the library's core invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.agu.codegen import generate_address_code
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.graph.access_graph import AccessGraph
from repro.ir.builder import pattern_from_offsets
from repro.ir.expr import AffineExpr
from repro.ir.layout import MemoryLayout
from repro.ir.parser import parse_kernel
from repro.ir.types import ArrayDecl, Loop
from repro.merging.cost import CostModel, cover_cost, path_cost
from repro.merging.greedy import best_pair_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import (
    intra_cover_lower_bound,
    min_intra_path_cover,
)
from repro.pathcover.paths import Path, PathCover
from repro.pathcover.verify import is_zero_cost_path

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
offsets_lists = st.lists(st.integers(-6, 6), min_size=1, max_size=14)
small_offsets_lists = st.lists(st.integers(-4, 4), min_size=1, max_size=9)
modify_ranges = st.integers(0, 4)


@st.composite
def pattern_and_partition(draw):
    """A random pattern plus a random valid path cover of it."""
    offsets = draw(offsets_lists)
    n = len(offsets)
    n_groups = draw(st.integers(1, n))
    assignment = [draw(st.integers(0, n_groups - 1)) for _ in range(n)]
    groups: dict[int, list[int]] = {}
    for position, group in enumerate(assignment):
        groups.setdefault(group, []).append(position)
    pattern = pattern_from_offsets(offsets)
    cover = PathCover.from_lists(groups.values(), n)
    return pattern, cover


# ----------------------------------------------------------------------
# Affine expressions
# ----------------------------------------------------------------------
class TestAffineExprProperties:
    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9),
           st.integers(-9, 9), st.integers(-50, 50))
    def test_addition_is_pointwise(self, c1, d1, c2, d2, x):
        left = AffineExpr(c1, d1)
        right = AffineExpr(c2, d2)
        assert (left + right).evaluate(x) == \
            left.evaluate(x) + right.evaluate(x)

    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-5, 5),
           st.integers(-50, 50))
    def test_scaling_is_pointwise(self, c, d, factor, x):
        expr = AffineExpr(c, d)
        assert (expr * factor).evaluate(x) == factor * expr.evaluate(x)

    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
    def test_distance_is_antisymmetric(self, c, d1, d2):
        a, b = AffineExpr(c, d1), AffineExpr(c, d2)
        assert a.distance_to(b) == -(b.distance_to(a))


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestCostProperties:
    @given(pattern_and_partition(), modify_ranges)
    def test_cover_cost_is_sum_of_path_costs(self, instance, m):
        pattern, cover = instance
        total = cover_cost(cover, pattern, m)
        assert total == sum(path_cost(path, pattern, m) for path in cover)

    @given(pattern_and_partition(), modify_ranges)
    def test_steady_state_adds_at_most_one_per_path(self, instance, m):
        pattern, cover = instance
        for path in cover:
            intra = path_cost(path, pattern, m, CostModel.INTRA)
            steady = path_cost(path, pattern, m, CostModel.STEADY_STATE)
            assert intra <= steady <= intra + 1

    @given(pattern_and_partition(), modify_ranges)
    def test_costs_bounded_by_transition_count(self, instance, m):
        pattern, cover = instance
        for path in cover:
            assert 0 <= path_cost(path, pattern, m) <= len(path)


# ----------------------------------------------------------------------
# Paths and merging
# ----------------------------------------------------------------------
class TestPathProperties:
    @given(st.sets(st.integers(0, 30), min_size=2, max_size=12))
    def test_merge_is_sorted_union(self, members):
        members = sorted(members)
        split = len(members) // 2
        left = Path(tuple(members[:split or 1]))
        right = Path(tuple(members[split or 1:]))
        merged = left.merge(right)
        assert list(merged) == members
        assert merged == right.merge(left)

    @given(pattern_and_partition(), st.integers(1, 4), modify_ranges)
    def test_best_pair_merge_meets_limit_and_partition(self, instance, k, m):
        pattern, cover = instance
        result = best_pair_merge(cover, k, pattern, m)
        assert result.n_registers == min(cover.n_paths, k)
        covered = sorted(p for path in result.cover for p in path)
        assert covered == list(range(len(pattern)))


# ----------------------------------------------------------------------
# Phase 1: covers and bounds
# ----------------------------------------------------------------------
class TestCoverProperties:
    @settings(max_examples=40, deadline=None)
    @given(offsets_lists, st.integers(1, 3))
    def test_bounds_bracket_k_tilde(self, offsets, m):
        pattern = pattern_from_offsets(offsets)
        graph = AccessGraph(pattern, m)
        lb = intra_cover_lower_bound(graph)
        ub = greedy_zero_cost_cover(graph).n_paths
        result = minimum_zero_cost_cover(pattern, m)
        assert lb <= result.k_tilde <= ub

    @settings(max_examples=40, deadline=None)
    @given(offsets_lists, st.integers(1, 3))
    def test_exact_cover_is_zero_cost_partition(self, offsets, m):
        pattern = pattern_from_offsets(offsets)
        result = minimum_zero_cost_cover(pattern, m)
        covered = sorted(p for path in result.cover for p in path)
        assert covered == list(range(len(offsets)))
        for path in result.cover:
            assert is_zero_cost_path(path, pattern, m)

    @settings(max_examples=40, deadline=None)
    @given(offsets_lists, st.integers(1, 3))
    def test_matching_cover_achieves_matching_bound(self, offsets, m):
        graph = AccessGraph(pattern_from_offsets(offsets), m)
        cover = min_intra_path_cover(graph)
        assert cover.n_paths == intra_cover_lower_bound(graph)

    @settings(max_examples=30, deadline=None)
    @given(small_offsets_lists)
    def test_k_tilde_weakly_decreases_in_m(self, offsets):
        pattern = pattern_from_offsets(offsets)
        sizes = [minimum_zero_cost_cover(pattern, m).k_tilde
                 for m in (1, 2, 3)]
        assert sizes[0] >= sizes[1] >= sizes[2]


# ----------------------------------------------------------------------
# Codegen + simulator agree with the model (the central audit)
# ----------------------------------------------------------------------
class TestEndToEndProperties:
    @settings(max_examples=30, deadline=None)
    @given(pattern_and_partition(), st.integers(1, 2),
           st.integers(1, 6))
    def test_simulated_overhead_equals_model_cost(self, instance, m,
                                                  iterations):
        pattern, cover = instance
        spec = AguSpec(max(cover.n_paths, 1), m)
        program = generate_address_code(pattern, cover, spec)
        loop = Loop(pattern, start=0, n_iterations=iterations)
        layout = MemoryLayout.contiguous([ArrayDecl("A", length=64)],
                                         origin=32)
        result = simulate(program, loop, layout)
        assert result.overhead_per_iteration == \
            cover_cost(cover, pattern, m, CostModel.STEADY_STATE)
        assert result.n_accesses_verified == iterations * len(pattern)


# ----------------------------------------------------------------------
# Frontend round-trip
# ----------------------------------------------------------------------
class TestParserProperties:
    @settings(max_examples=50)
    @given(offsets_lists)
    def test_offsets_round_trip_through_source(self, offsets):
        body = " ".join(
            f"A[i+{offset}];" if offset >= 0 else f"A[i-{-offset}];"
            for offset in offsets)
        kernel = parse_kernel(
            f"for (i = 8; i < 20; i++) {{ {body} }}")
        assert kernel.pattern.offsets() == tuple(offsets)

    @settings(max_examples=30)
    @given(st.integers(-10, 20), st.integers(1, 30), st.integers(1, 3))
    def test_iteration_count_matches_semantics(self, start, span, step):
        bound = start + span
        kernel = parse_kernel(
            f"for (i = {start}; i < {bound}; i += {step}) {{ A[i]; }}")
        values = [v for v in range(start, bound, step)]
        assert kernel.loop.n_iterations == len(values)
        assert kernel.loop.iteration_values() == values
