"""Unit tests for path costs C(P) and the two cost models."""

import pytest

from repro.errors import PathCoverError
from repro.ir.builder import LoopBuilder, pattern_from_offsets
from repro.merging.cost import CostModel, cover_cost, merge_cost, path_cost
from repro.pathcover.paths import Path, PathCover


class TestIntraModel:
    def test_zero_for_tight_chain(self, paper_pattern):
        # (a_1, a_3, a_5, a_6): offsets 1,2,1,0 -- all steps within 1.
        assert path_cost(Path((0, 2, 4, 5)), paper_pattern, 1,
                         CostModel.INTRA) == 0

    def test_counts_each_long_jump(self, paper_pattern):
        # (a_1, a_4, a_7): offsets 1,-1,-2 -> jumps -2, -1: one unit.
        assert path_cost(Path((0, 3, 6)), paper_pattern, 1,
                         CostModel.INTRA) == 1

    def test_singleton_is_free(self, paper_pattern):
        assert path_cost(Path((2,)), paper_pattern, 1,
                         CostModel.INTRA) == 0

    def test_whole_pattern_on_one_register(self, paper_pattern):
        # Offsets 1,0,2,-1,1,0,-2: steps -1,+2,-3,+2,-1,-2 with M=1:
        # four jumps exceed the range.
        assert path_cost(Path(tuple(range(7))), paper_pattern, 1,
                         CostModel.INTRA) == 4


class TestSteadyStateModel:
    def test_adds_wrap_cost(self, paper_pattern):
        # (a_1, a_3, a_5, a_6): intra free, but wrap 1+1-0 = 2 > 1.
        assert path_cost(Path((0, 2, 4, 5)), paper_pattern, 1,
                         CostModel.STEADY_STATE) == 1

    def test_default_model_is_steady_state(self, paper_pattern):
        assert path_cost(Path((0, 2, 4, 5)), paper_pattern, 1) == 1

    def test_wrap_free_path(self, paper_pattern):
        # (a_1, a_3, a_5): offsets 1,2,1; wrap 1+1-1 = 1: all free.
        assert path_cost(Path((0, 2, 4)), paper_pattern, 1) == 0

    def test_singleton_wrap_follows_step(self):
        pattern = pattern_from_offsets([0], step=3)
        assert path_cost(Path((0,)), pattern, 1) == 1
        assert path_cost(Path((0,)), pattern, 3) == 0

    def test_cross_array_transitions_always_cost(self):
        pattern = (LoopBuilder().read("x", 0).read("y", 0)
                   .build_pattern())
        # Intra x->y is non-constant (1 unit) and wrap y->x too.
        assert path_cost(Path((0, 1)), pattern, 100) == 2


class TestCoverCost:
    def test_sums_over_paths(self, paper_pattern):
        cover = PathCover((Path((0, 2, 4)), Path((1, 3, 5)), Path((6,))),
                          7)
        total = cover_cost(cover, paper_pattern, 1)
        assert total == sum(path_cost(path, paper_pattern, 1)
                            for path in cover)
        assert total == 0  # this is the K~=3 zero-cost cover

    def test_accepts_plain_iterables(self, paper_pattern):
        paths = [Path((0, 2, 4)), Path((1, 3, 5)), Path((6,))]
        assert cover_cost(paths, paper_pattern, 1) == 0


class TestMergeCost:
    def test_matches_merged_path_cost(self, paper_pattern):
        p1, p2 = Path((0, 2, 4)), Path((6,))
        assert merge_cost(p1, p2, paper_pattern, 1) == \
            path_cost(p1.merge(p2), paper_pattern, 1)

    def test_merging_zero_cost_paths_costs_at_least_one(self, paper_pattern):
        """The paper: "each merge operation incurs at least one unit-cost
        address computation" (by minimality of K~)."""
        zero_paths = [Path((0, 2, 4)), Path((1, 3, 5)), Path((6,))]
        for i in range(3):
            for j in range(i + 1, 3):
                assert merge_cost(zero_paths[i], zero_paths[j],
                                  paper_pattern, 1) >= 1

    def test_merge_can_beat_sum_but_not_minimality(self, rng):
        """Interleaving may *split* a long jump into free steps, so
        C(P1 (+) P2) is NOT monotone in the operands in general -- but
        merging two paths of a *minimum* zero-cost cover always costs
        at least 1 (else the cover was not minimal).
        """
        # Concrete non-monotonicity witness: offsets 0,5,10 with M=5.
        pattern = pattern_from_offsets([0, 5, 10])
        left = Path((0, 2))     # jump 10 > 5: cost 1 (intra)
        right = Path((1,))
        assert path_cost(left, pattern, 5, CostModel.INTRA) == 1
        assert merge_cost(left, right, pattern, 5, CostModel.INTRA) == 0

        # ... yet the minimal-cover property holds on random instances.
        from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
        for _ in range(20):
            n = rng.randint(2, 8)
            offsets = [rng.randint(-4, 4) for _ in range(n)]
            pat = pattern_from_offsets(offsets)
            cover = minimum_zero_cost_cover(pat, 1).cover
            paths = list(cover)
            for i in range(len(paths)):
                for j in range(i + 1, len(paths)):
                    assert merge_cost(paths[i], paths[j], pat, 1) >= 1


class TestValidation:
    def test_out_of_range_path_rejected(self, paper_pattern):
        with pytest.raises(PathCoverError):
            path_cost(Path((0, 99)), paper_pattern, 1)
