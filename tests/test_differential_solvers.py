"""Differential tests across the solver stack.

Every phase of the pipeline has at least two independent
implementations (a bound, an exact solver, a heuristic, baselines);
this module pits them against each other over a corpus of seeded
random patterns and asserts the invariants that must hold between
them:

* phase 1: ``greedy cover >= exact K~ >= matching lower bound``;
* phase 2: every merging strategy's cost dominates the exhaustive
  optimum, all strategies agree when no merging is needed, and each
  strategy's incremental cost bookkeeping matches a from-scratch
  ``cover_cost`` recomputation.
"""

from __future__ import annotations

import pytest

from repro.graph.access_graph import AccessGraph
from repro.merging.cost import CostModel, cover_cost
from repro.merging.exhaustive import optimal_allocation
from repro.merging.greedy import best_pair_merge
from repro.merging.naive import NAIVE_STRATEGIES, naive_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover
from repro.pathcover.heuristic import greedy_zero_cost_cover
from repro.pathcover.lower_bound import intra_cover_lower_bound
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_pattern,
)

#: Seeds of the differential corpus (sizes and shapes cycle per seed).
CORPUS_SEEDS = range(50)

#: Offset distributions cycled across the corpus.
_SHAPES = ("uniform", "clustered", "sweep", "mixed")


def corpus_pattern(seed: int, n_min: int = 6, n_max: int = 18):
    """The corpus pattern for one seed: varied size, span, and shape."""
    n = n_min + seed % (n_max - n_min + 1)
    return generate_pattern(
        RandomPatternConfig(n, offset_span=3 + seed % 6,
                            distribution=_SHAPES[seed % len(_SHAPES)]),
        seed=0xD1FF + seed)


class TestPhase1CoverChain:
    """Lower bound <= exact K~ <= greedy cover, over the whole corpus."""

    @pytest.mark.parametrize("modify_range", [1, 2])
    def test_bound_exact_greedy_chain(self, modify_range):
        exact_proofs = 0
        for seed in CORPUS_SEEDS:
            pattern = corpus_pattern(seed)
            graph = AccessGraph(pattern, modify_range)
            bound = intra_cover_lower_bound(graph)
            outcome = minimum_zero_cost_cover(pattern, modify_range)
            greedy = greedy_zero_cost_cover(graph)

            assert greedy.n_paths >= outcome.k_tilde >= bound, \
                f"seed {seed}: chain violated"
            assert 1 <= bound <= len(pattern)
            assert greedy.n_accesses == len(pattern)
            assert outcome.cover.n_paths == outcome.k_tilde
            exact_proofs += outcome.optimal
        # The corpus is sized so the exact solver proves optimality
        # throughout; a budget regression would silently weaken the
        # chain above, so pin it.
        assert exact_proofs == len(CORPUS_SEEDS)

    def test_both_covers_are_zero_cost(self):
        """Exact and greedy phase-1 covers both cost nothing intra."""
        for seed in CORPUS_SEEDS:
            pattern = corpus_pattern(seed)
            graph = AccessGraph(pattern, 1)
            outcome = minimum_zero_cost_cover(pattern, 1)
            greedy = greedy_zero_cost_cover(graph)
            assert cover_cost(outcome.cover, pattern, 1,
                              CostModel.INTRA) == 0
            assert cover_cost(greedy, pattern, 1, CostModel.INTRA) == 0


class TestPhase2MergingChain:
    """Optimal <= best-pair and optimal <= every naive strategy."""

    K = 2
    M = 1

    def small_corpus(self):
        """Patterns small enough for the exhaustive optimum."""
        for seed in CORPUS_SEEDS:
            yield seed, corpus_pattern(seed, n_min=5, n_max=9)

    @pytest.mark.parametrize("cost_model",
                             [CostModel.INTRA, CostModel.STEADY_STATE])
    def test_every_strategy_dominates_the_optimum(self, cost_model):
        for seed, pattern in self.small_corpus():
            outcome = minimum_zero_cost_cover(pattern, self.M)
            optimum = optimal_allocation(pattern, self.K, self.M,
                                         cost_model)
            if outcome.cover.n_paths <= self.K:
                # No merging needed: every competitor returns the
                # phase-1 cover's cost, and the optimum can only
                # improve on it via a different partition.
                cost = cover_cost(outcome.cover, pattern, self.M,
                                  cost_model)
                assert optimum.total_cost <= cost
                continue
            best = best_pair_merge(outcome.cover, self.K, pattern,
                                   self.M, cost_model)
            assert best.n_registers <= self.K
            assert best.total_cost >= optimum.total_cost, f"seed {seed}"
            for strategy in sorted(NAIVE_STRATEGIES):
                naive = naive_merge(outcome.cover, self.K, pattern,
                                    self.M, cost_model,
                                    strategy=strategy, seed=seed)
                assert naive.n_registers <= self.K
                assert naive.total_cost >= optimum.total_cost, \
                    f"seed {seed}, strategy {strategy}"

    def test_merge_bookkeeping_matches_recomputation(self):
        """Incrementally tracked costs == from-scratch cover_cost."""
        for seed in CORPUS_SEEDS:
            pattern = corpus_pattern(seed)
            outcome = minimum_zero_cost_cover(pattern, self.M)
            if outcome.cover.n_paths <= self.K:
                continue
            for result in [
                best_pair_merge(outcome.cover, self.K, pattern, self.M,
                                CostModel.STEADY_STATE),
                naive_merge(outcome.cover, self.K, pattern, self.M,
                            CostModel.STEADY_STATE, strategy="random",
                            seed=seed),
            ]:
                assert result.total_cost == cover_cost(
                    result.cover, pattern, self.M,
                    CostModel.STEADY_STATE), f"seed {seed}"

    def test_exhaustive_optimum_is_a_fixpoint_of_merging(self):
        """Best-pair merging from the optimum's register count cannot
        beat the exhaustive optimum (sanity check on the optimum)."""
        for seed, pattern in self.small_corpus():
            for k in (2, 3):
                optimum = optimal_allocation(pattern, k, self.M,
                                             CostModel.STEADY_STATE)
                assert optimum.cover.n_paths <= k
                assert optimum.total_cost == cover_cost(
                    optimum.cover, pattern, self.M,
                    CostModel.STEADY_STATE)
