"""Differential tests of the sharded experiment-point framework.

For every registered experiment (EXP-A1..A3, EXP-O1, EXP-X1..X3) the
suite proves the *sharding migration* off the ad-hoc sequential loops
changed nothing: result tables are bit-identical across worker counts,
across cold vs cached runs and cache backends, and against pinned
golden snapshots (``tests/golden/experiment_goldens.json``) captured
by running the retired sequential loops one last time, pre-sharding.

Golden provenance caveat: the snapshots were captured *after* this
PR's seed-reuse audit fixes landed in the sequential code, so for
EXP-A3 (``merging``) they encode the fixed naive-baseline seeding, not
the historical buggy one -- the EXP-A3 ``mean_naive_random`` column
intentionally differs from what any earlier release produced (see
:class:`~repro.analysis.experiments.MergingAblationConfig`).  The
goldens therefore isolate exactly one question: does sharding change
results?  They deliberately do not freeze the pre-fix behavior.

The suite also pins one point digest per experiment (cache-key drift
silently invalidates shared caches -- it must fail CI loudly instead)
and property-tests the :class:`~repro.batch.jobs.ExperimentPointJob`
pickle/cache round trips.
"""

from __future__ import annotations

import dataclasses
import json
import pickle
from pathlib import Path

import pytest

from _sharding_util import config_from_kwargs, normalize_summary

from repro.analysis.experiments import run_experiment
from repro.batch.cache import (
    InMemoryLRUCache,
    JsonFileCache,
    ShardedDirectoryCache,
)
from repro.batch.digest import job_digest
from repro.batch.engine import BatchCompiler, execute_any
from repro.batch.jobs import (
    ExperimentPointJob,
    ExperimentPointResult,
    naive_baseline_seed,
)
from repro.batch.registry import (
    experiment_point_jobs,
    get_experiment,
    registered_experiments,
)
from repro.errors import BatchError

#: Every per-point experiment this PR migrated off a sequential loop.
EXPERIMENTS = ("pathcover", "costmodel", "merging", "offset", "modreg",
               "reorder", "arraylayout")

GOLDEN = json.loads(
    (Path(__file__).parent / "golden" /
     "experiment_goldens.json").read_text())

#: Content digests of each experiment's first default-config point.
#: These change only when the digest payload layout, the params an
#: experiment derives, or DIGEST_VERSION change -- all of which
#: invalidate shared caches and must be deliberate, visible decisions.
PINNED_DIGESTS = {
    "arraylayout":
        "bf2278ffc946ddc26d8080bdf5cff379a26cc43599b77937670f9638aa802a04",
    "costmodel":
        "96739a4d549decbcf46785a8ebe52d8ac8c5a4e71111caa270691856cfcdeae1",
    "merging":
        "8b59b80e588c2336b2b0cd266acdc53d6607012c7dda0829f7f796f94eacfd84",
    "modreg":
        "34e9f3cdc5b4788b336e678c7b0ee0478040bc2c477d85ea0a3af7cfc9d1c1c5",
    "offset":
        "7abf2f939e7af72092815e11b8caf1cc5e4bc65d73d4a062e5a01b6e2c430234",
    "pathcover":
        "a8e51038af32e21d055868d238bef3adfd018f7571e33b07f7107c37cfc3dd92",
    "reorder":
        "f4466442e8076eb5de459b61cc23e6fc9c1ad53d2fccbdbae161e86ba0495ff3",
}


def tiny_config(experiment: str):
    """The golden snapshot's scaled-down config for one experiment."""
    return config_from_kwargs(get_experiment(experiment).config_type,
                              GOLDEN[experiment]["config"])


_BASELINES: dict[str, object] = {}


def baseline_summary(experiment: str):
    """The tiny-config single-worker summary, computed once per run."""
    if experiment not in _BASELINES:
        _BASELINES[experiment] = run_experiment(experiment,
                                                tiny_config(experiment))
    return _BASELINES[experiment]


class TestRegistry:
    def test_exactly_the_seven_experiments_are_registered(self):
        assert registered_experiments() == tuple(sorted(EXPERIMENTS))

    def test_unknown_experiment_fails_loudly(self):
        with pytest.raises(BatchError, match="unknown experiment"):
            get_experiment("does-not-exist")
        with pytest.raises(BatchError, match="unknown experiment"):
            run_experiment("does-not-exist")

    def test_config_type_mismatch_fails_loudly(self):
        with pytest.raises(BatchError, match="expects a"):
            experiment_point_jobs("pathcover", tiny_config("reorder"))

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_quick_and_default_configs_are_well_typed(self, experiment):
        definition = get_experiment(experiment)
        assert isinstance(definition.default_config(),
                          definition.config_type)
        assert isinstance(definition.quick_config(),
                          definition.config_type)
        # Quick grids are strictly smaller work than the defaults.
        assert len(experiment_point_jobs(
            experiment, definition.quick_config())) \
            <= len(experiment_point_jobs(experiment))


class TestPointJobs:
    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_one_job_per_point_with_unique_digests(self, experiment):
        jobs = experiment_point_jobs(experiment, tiny_config(experiment))
        assert jobs, experiment
        assert [job.index for job in jobs] == list(range(len(jobs)))
        digests = [job_digest(job) for job in jobs]
        assert len(set(digests)) == len(digests)
        assert len({job.name for job in jobs}) == len(jobs)

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_digest_ignores_display_metadata(self, experiment):
        job = experiment_point_jobs(experiment,
                                    tiny_config(experiment))[0]
        relabeled = dataclasses.replace(job, name="other-label",
                                        index=99)
        assert job_digest(relabeled) == job_digest(job)

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_digest_tracks_every_param(self, experiment):
        job = experiment_point_jobs(experiment,
                                    tiny_config(experiment))[0]
        for key, value in job.params.items():
            changed = dict(job.params)
            changed[key] = value + 1 if isinstance(value, int) \
                else value + 0.125 if isinstance(value, float) \
                else value + [0] if isinstance(value, list) \
                else str(value) + "x"
            assert job_digest(dataclasses.replace(
                job, params=changed)) != job_digest(job), key

    def test_digest_tracks_the_experiment_id(self):
        job = experiment_point_jobs("reorder", tiny_config("reorder"))[0]
        assert job_digest(dataclasses.replace(
            job, experiment="other")) != job_digest(job)

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_pinned_representative_digest(self, experiment):
        """Cache-key drift must fail CI loudly: the digest of the
        first default-config point is pinned."""
        job = experiment_point_jobs(experiment)[0]
        assert job_digest(job) == PINNED_DIGESTS[experiment]

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_jobs_round_trip_through_pickle(self, experiment):
        for job in experiment_point_jobs(experiment,
                                         tiny_config(experiment)):
            clone = pickle.loads(pickle.dumps(job))
            assert clone == job
            assert job_digest(clone) == job_digest(job)

    def test_execute_through_generic_dispatch(self):
        job = experiment_point_jobs("reorder", tiny_config("reorder"))[0]
        result = execute_any(job)
        assert isinstance(result, ExperimentPointResult)
        assert result.experiment == "reorder"
        assert result.digest == job_digest(job)
        assert not result.from_cache
        # Values are JSON-canonical: a cache round trip cannot change
        # their representation.
        assert result.values == json.loads(json.dumps(result.values))

    def test_cache_hits_rebuild_display_metadata_from_the_job(self):
        """A reordered grid served from cache gets the *current*
        name/index, not whatever position stored the entry."""
        cache = InMemoryLRUCache()
        jobs = experiment_point_jobs("reorder", tiny_config("reorder"))
        list(BatchCompiler(cache=cache).run_iter(jobs))
        reordered = [dataclasses.replace(job, index=position,
                                         name=f"renamed-{position}")
                     for position, job in enumerate(reversed(jobs))]
        results = list(BatchCompiler(cache=cache).run_iter(reordered))
        assert all(result.from_cache for result in results)
        assert [result.index for result in results] \
            == [job.index for job in reordered]
        assert [result.name for result in results] \
            == [job.name for job in reordered]

    def test_payload_excludes_display_metadata(self):
        job = experiment_point_jobs("reorder", tiny_config("reorder"))[0]
        payload = execute_any(job).payload()
        assert "name" not in payload
        assert "index" not in payload
        assert "from_cache" not in payload
        assert payload["digest"] == job_digest(job)

    def test_non_dict_point_values_fail_loudly(self):
        job = ExperimentPointJob(name="bad", experiment="pathcover",
                                 index=0, params={"n": 8})
        definition = get_experiment("pathcover")
        original = definition.run_point
        object.__setattr__(definition, "run_point", lambda params: [1])
        try:
            with pytest.raises(BatchError, match="must return a dict"):
                job.execute()
        finally:
            object.__setattr__(definition, "run_point", original)


class TestBitIdentity:
    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_matches_pre_migration_golden(self, experiment):
        """The sharded run reproduces the retired sequential loop's
        summary bit-for-bit (timing fields excluded by construction)."""
        assert normalize_summary(baseline_summary(experiment)) \
            == GOLDEN[experiment]["summary"]

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_bit_identical_across_worker_counts(self, experiment):
        parallel = run_experiment(experiment, tiny_config(experiment),
                                  n_workers=2)
        assert normalize_summary(parallel) \
            == normalize_summary(baseline_summary(experiment))
        assert parallel.n_points_cached == 0

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_bit_identical_cold_vs_cached(self, experiment, tmp_path):
        """A warm re-run recomputes nothing and reproduces the cold
        summary exactly -- including stored wall-clock fields, which a
        cache hit replays rather than remeasures."""
        store = ShardedDirectoryCache(tmp_path / "points")
        config = tiny_config(experiment)
        cold = run_experiment(experiment, config, cache=store)
        warm = run_experiment(experiment, config,
                              cache=ShardedDirectoryCache(store.root))
        assert normalize_summary(warm, keep_point_timings=True) \
            == normalize_summary(cold, keep_point_timings=True)
        assert cold.n_points_cached == 0
        assert warm.n_points_compiled == 0
        assert warm.n_points_cached == cold.n_points_compiled

    def test_partial_cache_only_computes_whats_missing(self, tmp_path):
        store = ShardedDirectoryCache(tmp_path / "points")
        config = tiny_config("modreg")
        jobs = experiment_point_jobs("modreg", config)
        list(BatchCompiler(cache=store).as_completed(jobs[:1]))
        summary = run_experiment("modreg", config, cache=store)
        assert summary.n_points_cached == 1
        assert summary.n_points_compiled == len(jobs) - 1
        assert normalize_summary(summary) == GOLDEN["modreg"]["summary"]

    def test_progress_callback_streams_every_point(self):
        config = tiny_config("costmodel")
        total_points = len(experiment_point_jobs("costmodel", config))
        seen = []
        run_experiment("costmodel", config,
                       progress=lambda done, total, result:
                       seen.append((done, total, result.name)))
        assert [done for done, _, _ in seen] \
            == list(range(1, total_points + 1))
        assert all(total == total_points for _, total, _ in seen)
        assert len({name for _, _, name in seen}) == total_points


class TestBitIdentityAcrossExecutors:
    """The executor differential: the summary every experiment
    assembles is bit-identical whether its points ran inline, on a
    local pool spec, or on a worker fleet behind a job server."""

    @pytest.mark.parametrize("experiment", EXPERIMENTS)
    def test_bit_identical_through_cluster_executor(self, experiment):
        from _cluster_jobs import thread_fleet

        from repro.batch.cluster import ClusterExecutor

        with thread_fleet(n_workers=2) as server:
            clustered = run_experiment(
                experiment, tiny_config(experiment),
                executor=ClusterExecutor(*server.address))
        assert normalize_summary(clustered) \
            == normalize_summary(baseline_summary(experiment))
        assert clustered.n_points_cached == 0

    def test_bit_identical_through_local_pool_spec(self):
        summary = run_experiment("modreg", tiny_config("modreg"),
                                 executor="local:2")
        assert normalize_summary(summary) \
            == normalize_summary(baseline_summary("modreg"))

    def test_cluster_run_persists_into_a_resumable_cache(
            self, tmp_path):
        """A cluster run warms the same cache a local run resumes
        from -- compute location never leaks into cache identity."""
        from _cluster_jobs import thread_fleet

        from repro.batch.cluster import ClusterExecutor

        store = ShardedDirectoryCache(tmp_path / "points")
        config = tiny_config("reorder")
        with thread_fleet(n_workers=2) as server:
            warmed = run_experiment(
                "reorder", config, cache=store,
                executor=ClusterExecutor(*server.address))
        cached = run_experiment(
            "reorder", config,
            cache=ShardedDirectoryCache(store.root))
        assert cached.n_points_compiled == 0
        assert cached.n_points_cached == warmed.n_points_compiled
        assert normalize_summary(cached, keep_point_timings=True) \
            == normalize_summary(warmed, keep_point_timings=True)


class TestCachePayloadIsolation:
    """PR 2's aliasing guarantee, extended to the new job type: a
    caller mutating a streamed result's ``values`` must never corrupt
    what any backend replays later."""

    def _backends(self, tmp_path):
        return (InMemoryLRUCache(),
                JsonFileCache(tmp_path / "points.json"),
                ShardedDirectoryCache(tmp_path / "points"))

    def test_mutating_results_never_reaches_the_cache(self, tmp_path):
        job = experiment_point_jobs("reorder", tiny_config("reorder"))[0]
        reference = execute_any(job).values
        for cache in self._backends(tmp_path):
            compiler = BatchCompiler(cache=cache)
            (cold,) = list(compiler.run_iter([job]))
            cold.values.clear()  # caller mutates the streamed payload
            (warm,) = list(compiler.run_iter([job]))
            assert warm.from_cache, type(cache).__name__
            assert warm.values == reference, type(cache).__name__
            warm.values["mean_fixed_order"] = -1.0
            (again,) = list(compiler.run_iter([job]))
            assert again.values == reference, type(cache).__name__

    def test_cache_get_returns_isolated_payloads(self, tmp_path):
        job = experiment_point_jobs("reorder", tiny_config("reorder"))[0]
        digest = job_digest(job)
        for cache in self._backends(tmp_path):
            cache.put(digest, execute_any(job).payload())
            first = cache.get(digest)
            first["values"]["mean_fixed_order"] = -1.0
            second = cache.get(digest)
            assert second["values"]["mean_fixed_order"] != -1.0, \
                type(cache).__name__


class TestMergingSeedScheme:
    """The EXP-A3 instance of the EXP-S1 seed-reuse audit: naive
    merge-order streams must be disjoint across grid points and must
    never alias a pattern stream."""

    def _jobs(self):
        return experiment_point_jobs("merging")

    def test_naive_streams_are_disjoint_across_grid_points(self):
        streams = []
        for job in self._jobs():
            streams.append({
                naive_baseline_seed(job.params["naive_seed"],
                                    pattern_index, 0)
                for pattern_index in range(job.params["patterns"])})
        for i, first in enumerate(streams):
            for second in streams[i + 1:]:
                assert not first & second

    def test_pattern_seeds_never_alias_naive_streams(self):
        jobs = self._jobs()
        pattern_seeds = {job.params["seed"] for job in jobs}
        naive_seeds = {
            naive_baseline_seed(job.params["naive_seed"], pattern_index,
                                0)
            for job in jobs
            for pattern_index in range(job.params["patterns"])}
        assert not pattern_seeds & naive_seeds

    def test_naive_baselines_resample_across_grid_index(self):
        """Same patterns at a different naive base: the optimized side
        is unchanged, the naive-random baseline resamples."""
        from repro.batch.jobs import NAIVE_SEED_STRIDE

        job = dataclasses.replace(
            self._jobs()[0],
            params={**self._jobs()[0].params, "n": 12, "patterns": 8})
        shifted = dataclasses.replace(job, params={
            **job.params,
            "naive_seed": job.params["naive_seed"] + NAIVE_SEED_STRIDE})
        first, second = job.execute(), shifted.execute()
        assert first.values["mean_best_pair"] \
            == second.values["mean_best_pair"]
        assert first.values["mean_optimal"] \
            == second.values["mean_optimal"]
        assert first.values["mean_naive_random"] \
            != second.values["mean_naive_random"]


class TestDistributionSeedScheme:
    """The EXP-S3 instance of the audit: each distribution repetition
    draws its own naive-baseline streams."""

    def test_distribution_naive_streams_are_disjoint(self):
        from repro.analysis.experiments import (
            DistributionSensitivityConfig,
            StatisticalConfig,
            statistical_grid_jobs,
        )
        from repro.batch.jobs import (
            DISTRIBUTION_SEED_SPAN,
            NAIVE_SEED_STRIDE,
        )

        config = DistributionSensitivityConfig()
        per_distribution = []
        for dist_index, distribution in enumerate(config.distributions):
            jobs = statistical_grid_jobs(StatisticalConfig(
                n_values=config.n_values, m_values=config.m_values,
                k_values=config.k_values,
                patterns_per_config=config.patterns_per_config,
                distribution=distribution, seed=config.seed,
                naive_seed_base=config.seed + NAIVE_SEED_STRIDE
                * DISTRIBUTION_SEED_SPAN * (dist_index + 1)))
            per_distribution.append(
                {job.naive_seed for job in jobs})
        for i, first in enumerate(per_distribution):
            for second in per_distribution[i + 1:]:
                assert not first & second

    def test_default_statistical_jobs_unchanged_by_base_field(self):
        """``naive_seed_base=None`` must reproduce the PR-2 seeding
        exactly (EXP-S1 cache entries stay valid)."""
        from repro.analysis.experiments import (
            StatisticalConfig,
            statistical_grid_jobs,
        )
        from repro.batch.jobs import NAIVE_SEED_STRIDE

        config = StatisticalConfig(n_values=(10,), m_values=(1,),
                                   k_values=(2, 3), seed=77)
        jobs = statistical_grid_jobs(config)
        for grid_index, job in enumerate(jobs):
            assert job.naive_seed \
                == config.seed + NAIVE_SEED_STRIDE * (grid_index + 1)
