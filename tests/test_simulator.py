"""Unit tests for the AGU simulator (the cost-model auditor)."""

import dataclasses

import pytest

from repro.agu.codegen import (
    generate_address_code,
    generate_unoptimized_code,
)
from repro.agu.isa import Modify, Use
from repro.agu.model import AguSpec
from repro.agu.simulator import simulate
from repro.errors import SimulationError
from repro.ir.builder import loop_from_offsets, pattern_from_offsets
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayDecl, Loop
from repro.merging.greedy import best_pair_merge
from repro.pathcover.branch_and_bound import minimum_zero_cost_cover


def build_program(pattern, k, m):
    cover = minimum_zero_cost_cover(pattern, m).cover
    merged = best_pair_merge(cover, k, pattern, m)
    return generate_address_code(pattern, merged.cover, AguSpec(k, m))


@pytest.fixture
def layout():
    return MemoryLayout.contiguous([ArrayDecl("A", length=64)])


class TestVerifiedRuns:
    def test_paper_example(self, paper_loop, layout):
        program = build_program(paper_loop.pattern, 2, 1)
        result = simulate(program, paper_loop, layout)
        assert result.n_iterations == 30
        assert result.n_accesses_verified == 30 * 7
        assert result.overhead_per_iteration == 2
        assert result.loop_overhead_instructions == 60
        assert result.total_address_instructions == 60 + 2

    def test_zero_iterations(self, layout):
        loop = loop_from_offsets([0, 1], start=0, n_iterations=0)
        program = build_program(loop.pattern, 2, 1)
        result = simulate(program, loop, layout)
        assert result.n_accesses_verified == 0
        assert result.total_address_instructions == 0

    def test_trace_recording(self, layout):
        loop = loop_from_offsets([0, 1], start=3, n_iterations=2)
        program = build_program(loop.pattern, 1, 1)
        result = simulate(program, loop, layout, keep_trace=True)
        assert len(result.trace) == 4
        first = result.trace[0]
        assert (first.iteration, first.loop_value) == (0, 3)
        assert first.address == layout.address_of(loop.pattern[0], 3)

    def test_trace_off_by_default(self, paper_loop, layout):
        program = build_program(paper_loop.pattern, 2, 1)
        assert simulate(program, paper_loop, layout).trace == ()

    def test_symbolic_loop_needs_count(self, layout):
        pattern = pattern_from_offsets([0, 1])
        loop = Loop(pattern, bound_symbol="N")
        program = build_program(pattern, 1, 1)
        result = simulate(program, loop, layout, n_iterations=5)
        assert result.n_iterations == 5

    def test_baseline_program_verifies(self, paper_loop, layout):
        program = generate_unoptimized_code(paper_loop.pattern,
                                            AguSpec(1, 1))
        result = simulate(program, paper_loop, layout)
        assert result.overhead_per_iteration == 7

    def test_negative_step_loop(self):
        pattern = pattern_from_offsets([0, 1], step=-1)
        loop = Loop(pattern, start=40, n_iterations=10)
        layout = MemoryLayout.contiguous([ArrayDecl("A", length=64)])
        program = build_program(pattern, 1, 1)
        result = simulate(program, loop, layout)
        assert result.n_accesses_verified == 20


class TestErrorDetection:
    def test_corrupted_post_modify_detected(self, paper_loop, layout):
        program = build_program(paper_loop.pattern, 2, 1)
        body = list(program.body)
        for index, instr in enumerate(body):
            if isinstance(instr, Use) and instr.post_modify is not None:
                body[index] = dataclasses.replace(
                    instr, post_modify=instr.post_modify + 1)
                break
        corrupted = dataclasses.replace(program, body=tuple(body))
        with pytest.raises(SimulationError, match="address mismatch"):
            simulate(corrupted, paper_loop, layout)

    def test_corrupted_modify_detected(self, paper_loop, layout):
        program = build_program(paper_loop.pattern, 1, 1)
        body = list(program.body)
        for index, instr in enumerate(body):
            if isinstance(instr, Modify):
                body[index] = Modify(instr.register, instr.delta + 2)
                break
        corrupted = dataclasses.replace(program, body=tuple(body))
        with pytest.raises(SimulationError, match="address mismatch"):
            simulate(corrupted, paper_loop, layout)

    def test_unwritten_register_detected(self, paper_loop, layout):
        program = build_program(paper_loop.pattern, 2, 1)
        stripped = dataclasses.replace(program, prologue=())
        with pytest.raises(SimulationError, match="unwritten"):
            simulate(stripped, paper_loop, layout)

    def test_wrong_pattern_rejected(self, paper_loop, layout):
        other = pattern_from_offsets([9, 9])
        program = build_program(other, 1, 1)
        with pytest.raises(SimulationError, match="differs"):
            simulate(program, paper_loop, layout)

    def test_non_word_addressed_array_rejected(self, paper_loop):
        program = build_program(paper_loop.pattern, 2, 1)
        wide = MemoryLayout.contiguous(
            [ArrayDecl("A", element_size=2, length=64)])
        with pytest.raises(SimulationError, match="word-addressed"):
            simulate(program, paper_loop, wide)

    def test_mismatch_message_names_the_access(self, paper_loop, layout):
        program = build_program(paper_loop.pattern, 2, 1)
        body = list(program.body)
        for index, instr in enumerate(body):
            if isinstance(instr, Use) and instr.post_modify is not None:
                body[index] = dataclasses.replace(
                    instr, post_modify=instr.post_modify - 1)
                break
        corrupted = dataclasses.replace(program, body=tuple(body))
        with pytest.raises(SimulationError, match=r"a_\d"):
            simulate(corrupted, paper_loop, layout)
