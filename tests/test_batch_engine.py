"""Tests of batch jobs, the engine's fan-out, and its reports."""

from __future__ import annotations

import json

import pytest

from repro.agu.model import AguSpec
from repro.analysis.reports import to_jsonable
from repro.batch.engine import BatchCompiler, BatchReport, execute_job
from repro.batch.jobs import (
    BatchJob,
    job_matrix,
    jobs_from_kernels,
    jobs_from_random,
    jobs_from_suite,
)
from repro.core.config import AllocatorConfig
from repro.errors import BatchError, WorkloadError
from repro.ir.builder import pattern_from_offsets
from repro.workloads.random_patterns import RandomPatternConfig
from repro.workloads.suite import SUITES

SPEC = AguSpec(4, 1)


class TestBatchJob:
    def test_needs_exactly_one_input(self):
        with pytest.raises(BatchError):
            BatchJob(name="none", spec=SPEC)
        with pytest.raises(BatchError):
            BatchJob(name="both", spec=SPEC, source="for",
                     pattern=pattern_from_offsets((1,)))

    def test_rejects_non_positive_iterations(self):
        with pytest.raises(BatchError):
            BatchJob(name="bad", spec=SPEC, source="x", n_iterations=0)

    def test_pattern_job_wraps_into_a_simulatable_kernel(self):
        pattern = pattern_from_offsets((1, 0, -3, 2))
        job = BatchJob(name="wrapped", spec=SPEC, pattern=pattern)
        kernel = job.kernel()
        assert kernel.pattern == pattern
        # Start is pushed up so no negative element is touched.
        assert kernel.loop.start == 3
        assert {decl.name for decl in kernel.arrays} == {"A"}

    def test_pattern_job_executes_with_simulation(self):
        job = BatchJob(name="p", spec=AguSpec(2, 1),
                       pattern=pattern_from_offsets((1, 0, 2, -1, 1, 0, -2)),
                       n_iterations=8)
        result = execute_job(job)
        assert result.simulated and result.audit_ok
        assert result.n_accesses == 7
        assert result.total_cost == 2  # the paper's K=2 example


class TestJobFactories:
    def test_suite_jobs_cover_the_suite_in_order(self):
        jobs = jobs_from_suite("core8", SPEC)
        assert tuple(job.name for job in jobs) == SUITES["core8"]
        assert all(job.source is not None for job in jobs)

    def test_unknown_suite_and_kernel_are_rejected(self):
        with pytest.raises(WorkloadError):
            jobs_from_suite("nope", SPEC)
        with pytest.raises(WorkloadError):
            jobs_from_kernels(["nope"], SPEC)

    def test_random_jobs_are_reproducible(self):
        config = RandomPatternConfig(10, offset_span=5)
        first = jobs_from_random(config, 4, SPEC, seed=7)
        second = jobs_from_random(config, 4, SPEC, seed=7)
        assert len(first) == 4
        assert [job.pattern for job in first] \
            == [job.pattern for job in second]
        assert first[0].name == "uniform-n10-seed7-0"
        other = jobs_from_random(config, 4, SPEC, seed=8)
        assert [job.pattern for job in first] \
            != [job.pattern for job in other]

    def test_matrix_crosses_specs_and_configs(self):
        base = jobs_from_kernels(["fir8"], SPEC)
        specs = [AguSpec(2, 1), AguSpec(4, 2)]
        configs = [None, AllocatorConfig(exact_cover_limit=8)]
        matrix = job_matrix(base, specs, configs)
        assert len(matrix) == 4
        assert [job.name for job in matrix] == [
            "fir8@K2M1/c0", "fir8@K2M1/c1",
            "fir8@K4M2/c0", "fir8@K4M2/c1",
        ]
        with pytest.raises(BatchError):
            job_matrix(base, [])
        with pytest.raises(BatchError):
            job_matrix(base, specs, [])


class TestBatchCompiler:
    def test_rejects_non_positive_workers(self):
        with pytest.raises(BatchError):
            BatchCompiler(n_workers=0)

    def test_compile_suite_shorthand(self):
        report = BatchCompiler().compile_suite("core8", SPEC,
                                               n_iterations=4)
        assert report.n_jobs == len(SUITES["core8"])
        assert report.all_audits_ok

    def test_parallel_equals_inline(self):
        """Differential: the process pool changes wall time only."""
        jobs = jobs_from_suite("core8", SPEC, n_iterations=4)
        inline = BatchCompiler(n_workers=1).compile(jobs)
        pooled = BatchCompiler(n_workers=2).compile(jobs)
        assert pooled.n_workers == 2
        for lhs, rhs in zip(inline.results, pooled.results):
            assert lhs.name == rhs.name
            assert lhs.total_cost == rhs.total_cost
            assert lhs.k_tilde == rhs.k_tilde
            assert lhs.n_registers_used == rhs.n_registers_used

    def test_matrix_batch_over_random_patterns(self):
        jobs = job_matrix(
            jobs_from_random(RandomPatternConfig(10, offset_span=5), 3,
                             SPEC, seed=1),
            [AguSpec(2, 1), AguSpec(4, 1)])
        report = BatchCompiler().compile(jobs)
        assert report.n_jobs == 6
        # More registers can never cost more on the same pattern.
        for tight, rich in zip(report.results[0::2],
                               report.results[1::2]):
            assert rich.total_cost <= tight.total_cost


class TestBatchReport:
    @pytest.fixture(scope="class")
    def report(self) -> BatchReport:
        return BatchCompiler().compile_suite("core8", SPEC,
                                             n_iterations=4)

    def test_aggregates(self, report):
        assert report.n_jobs == 8
        assert report.total_accesses \
            == sum(r.n_accesses for r in report.results)
        assert report.mean_overhead_per_iteration == pytest.approx(
            sum(r.overhead_per_iteration for r in report.results) / 8)
        assert report.jobs_per_second > 0
        assert report.elapsed_seconds > 0

    def test_render_and_summary(self, report):
        text = report.render()
        for result in report.results:
            assert result.name in text
        summary = report.summary()
        assert "8 job(s)" in summary
        assert "cache hit(s)" in summary

    def test_lookup_by_name(self, report):
        assert report.result("fir8").n_accesses == 17
        with pytest.raises(BatchError):
            report.result("nope")

    def test_report_is_json_able(self, report):
        payload = json.dumps(to_jsonable(report))
        assert "fir8" in payload

    def test_empty_batch(self):
        report = BatchCompiler().compile([])
        assert report.n_jobs == 0
        assert report.mean_overhead_per_iteration == 0.0
        assert report.all_audits_ok
