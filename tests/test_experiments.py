"""Tests of the experiment harness (scaled-down configurations)."""

import pytest

from repro.analysis.experiments import (
    CostModelAblationConfig,
    KernelComparisonConfig,
    MergingAblationConfig,
    OffsetComparisonConfig,
    PathCoverAblationConfig,
    StatisticalConfig,
    marginalize,
    run_cost_model_ablation,
    run_kernel_comparison,
    run_merging_ablation,
    run_offset_comparison,
    run_path_cover_ablation,
    run_statistical_comparison,
)
from repro.agu.model import AguSpec
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def stats_summary():
    return run_statistical_comparison(StatisticalConfig(
        n_values=(10, 16), m_values=(1, 2), k_values=(2, 3),
        patterns_per_config=6, naive_repeats=3, seed=7))


class TestStatisticalComparison:
    def test_grid_shape(self, stats_summary):
        assert len(stats_summary.rows) == 2 * 2 * 2

    def test_rows_internally_consistent(self, stats_summary):
        for row in stats_summary.rows:
            assert row.n_patterns == 6
            assert 0 <= row.constrained_fraction <= 1
            assert row.mean_optimized >= 0
            assert row.mean_k_tilde >= 1

    def test_heuristic_beats_naive_overall(self, stats_summary):
        # The paper's headline claim, on the scaled-down grid: the
        # optimized allocator must win on aggregate.
        assert stats_summary.overall_reduction_pct > 0
        assert stats_summary.average_reduction_pct > 0

    def test_optimized_never_above_naive_mean_per_row(self, stats_summary):
        for row in stats_summary.rows:
            # Per-row means: best-pair is compared against the *average*
            # of random merge orders, which it beats or matches.
            assert row.mean_optimized <= row.mean_naive + 1e-9

    def test_deterministic(self, stats_summary):
        again = run_statistical_comparison(StatisticalConfig(
            n_values=(10, 16), m_values=(1, 2), k_values=(2, 3),
            patterns_per_config=6, naive_repeats=3, seed=7))
        assert again.rows == stats_summary.rows

    def test_marginalize_axes(self, stats_summary):
        by_n = marginalize(stats_summary, "n")
        assert [row.n for row in by_n] == [10, 16]
        assert all(row.m == -1 and row.k == -1 for row in by_n)
        by_k = marginalize(stats_summary, "k")
        assert [row.k for row in by_k] == [2, 3]

    def test_marginalize_preserves_pattern_counts(self, stats_summary):
        by_m = marginalize(stats_summary, "m")
        assert sum(row.n_patterns for row in by_m) == \
            sum(row.n_patterns for row in stats_summary.rows)

    def test_marginalize_bad_axis(self, stats_summary):
        with pytest.raises(ExperimentError):
            marginalize(stats_summary, "q")


class TestKernelComparison:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_kernel_comparison(KernelComparisonConfig(
            kernel_names=("paper_example", "fir8", "iir_biquad_df1",
                          "downsample2"),
            spec=AguSpec(4, 1), simulate_iterations=8))

    def test_rows_per_kernel(self, summary):
        assert [row.kernel for row in summary.rows] == [
            "paper_example", "fir8", "iir_biquad_df1", "downsample2"]

    def test_baseline_overhead_is_n(self, summary):
        for row in summary.rows:
            assert row.baseline_overhead == row.n_accesses

    def test_optimized_never_worse(self, summary):
        for row in summary.rows:
            assert row.optimized_overhead <= row.baseline_overhead
            assert row.overhead_reduction_pct >= 0
            assert row.speed_improvement_pct >= 0

    def test_means(self, summary):
        assert summary.mean_overhead_reduction_pct > 0
        assert summary.mean_speed_improvement_pct > 0


class TestPathCoverAblation:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_path_cover_ablation(PathCoverAblationConfig(
            n_values=(8, 12), m_values=(1,), patterns_per_config=6))

    def test_bounds_bracket(self, summary):
        for row in summary.rows:
            assert row.mean_lower_bound <= row.mean_k_tilde + 1e-9
            assert row.mean_k_tilde <= row.mean_greedy + 1e-9

    def test_fractions_valid(self, summary):
        for row in summary.rows:
            for value in (row.lb_tight_fraction,
                          row.greedy_tight_fraction,
                          row.exact_fraction):
                assert 0 <= value <= 1


class TestCostModelAblation:
    def test_steady_merging_never_pays_more(self):
        summary = run_cost_model_ablation(CostModelAblationConfig(
            n_values=(10, 14), m_values=(1,), k_values=(2,),
            patterns_per_config=6))
        for row in summary.rows:
            assert row.mean_steady_when_merged_steady <= \
                row.mean_steady_when_merged_intra + 1e-9
        assert summary.mean_penalty_pct >= 0


class TestMergingAblation:
    def test_ordering_optimal_best_naive(self):
        summary = run_merging_ablation(MergingAblationConfig(
            n_values=(8,), m_values=(1,), k_values=(2,),
            patterns_per_config=6))
        for row in summary.rows:
            assert row.mean_optimal <= row.mean_best_pair + 1e-9
            assert 0 <= row.best_pair_optimal_fraction <= 1
            assert row.best_pair_gap_pct >= 0


class TestDistributionSensitivity:
    def test_wins_on_aggregate_across_distributions(self):
        """Best-pair merging is a heuristic: on a micro-sample a single
        distribution can fluctuate, but the aggregate must win (the
        full-grid per-distribution claim is asserted by the bench)."""
        from repro.analysis.experiments import (
            DistributionSensitivityConfig,
            run_distribution_sensitivity,
        )
        summary = run_distribution_sensitivity(
            DistributionSensitivityConfig(
                n_values=(12, 20), m_values=(1, 2), k_values=(2,),
                patterns_per_config=8))
        assert len(summary.rows) == 4
        total_optimized = sum(row.mean_optimized for row in summary.rows)
        total_naive = sum(row.mean_naive for row in summary.rows)
        assert total_optimized < total_naive


class TestOffsetComparison:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_offset_comparison(OffsetComparisonConfig(
            v_values=(5, 7), length_values=(16,),
            sequences_per_config=6, goa_k_values=(2,)))

    def test_soa_heuristics_beat_ofu(self, summary):
        for row in summary.soa_rows:
            assert row.mean_liao <= row.mean_ofu + 1e-9
            assert row.mean_tiebreak <= row.mean_ofu + 1e-9

    def test_optimal_is_floor(self, summary):
        for row in summary.soa_rows:
            assert row.mean_optimal is not None  # v <= 8 here
            assert row.mean_optimal <= row.mean_liao + 1e-9
            assert row.mean_optimal <= row.mean_tiebreak + 1e-9

    def test_goa_rows_present(self, summary):
        assert len(summary.goa_rows) == 2  # one per (v, length) pair
