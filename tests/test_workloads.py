"""Unit tests for workloads: random patterns and the kernel library."""

import pytest

from repro.agu.model import AguSpec
from repro.core.pipeline import compile_kernel
from repro.errors import WorkloadError
from repro.workloads.kernels import KERNELS, get_kernel
from repro.workloads.random_patterns import (
    DISTRIBUTIONS,
    RandomPatternConfig,
    generate_batch,
    generate_pattern,
)
from repro.workloads.suite import SUITES, suite_kernels


class TestRandomPatterns:
    def test_deterministic_by_seed(self):
        config = RandomPatternConfig(15)
        assert generate_pattern(config, 5) == generate_pattern(config, 5)
        assert generate_batch(config, 4, seed=1) == \
            generate_batch(config, 4, seed=1)

    def test_different_seeds_differ(self):
        config = RandomPatternConfig(15)
        assert generate_pattern(config, 1) != generate_pattern(config, 2)

    @pytest.mark.parametrize("distribution", sorted(DISTRIBUTIONS))
    def test_all_distributions_produce_valid_patterns(self, distribution):
        config = RandomPatternConfig(20, offset_span=5,
                                     distribution=distribution)
        pattern = generate_pattern(config, 3)
        assert len(pattern) == 20
        assert all(-5 <= access.offset <= 5 for access in pattern)

    def test_sweep_is_sorted(self):
        config = RandomPatternConfig(12, distribution="sweep")
        offsets = generate_pattern(config, 0).offsets()
        assert list(offsets) == sorted(offsets)

    def test_multi_array(self):
        config = RandomPatternConfig(40, n_arrays=3)
        pattern = generate_pattern(config, 0)
        assert 1 < len(pattern.arrays()) <= 3

    def test_write_fraction(self):
        config = RandomPatternConfig(200, write_fraction=1.0)
        pattern = generate_pattern(config, 0)
        assert all(access.is_write for access in pattern)

    def test_step_carried(self):
        config = RandomPatternConfig(5, step=2)
        assert generate_pattern(config, 0).step == 2

    @pytest.mark.parametrize("kwargs", [
        dict(n_accesses=-1),
        dict(n_accesses=5, offset_span=-1),
        dict(n_accesses=5, distribution="normal"),
        dict(n_accesses=5, n_arrays=0),
        dict(n_accesses=5, write_fraction=2.0),
        dict(n_accesses=5, step=0),
        dict(n_accesses=5, cluster_spread=-1),
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(WorkloadError):
            RandomPatternConfig(**kwargs)

    def test_negative_batch_rejected(self):
        with pytest.raises(WorkloadError):
            generate_batch(RandomPatternConfig(3), -1)


class TestKernelLibrary:
    def test_library_size(self):
        assert len(KERNELS) >= 16

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_parses(self, name):
        kernel = KERNELS[name].kernel()
        assert len(kernel.pattern) >= 1
        assert kernel.loop.n_iterations is not None

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_compiles_and_simulates(self, name):
        kernel = KERNELS[name].kernel()
        artifacts = compile_kernel(kernel, AguSpec(8, 1), n_iterations=8)
        sim = artifacts.simulation
        assert sim is not None
        assert sim.n_accesses_verified == 8 * len(kernel.pattern)
        assert sim.overhead_per_iteration == \
            artifacts.allocation.total_cost

    def test_paper_example_kernel_matches_fixture(self, paper_pattern):
        kernel = get_kernel("paper_example").kernel()
        assert kernel.pattern.offsets() == paper_pattern.offsets()

    def test_get_kernel_unknown(self):
        with pytest.raises(WorkloadError, match="unknown kernel"):
            get_kernel("fft_9000")

    def test_n_accesses_property(self):
        assert get_kernel("paper_example").n_accesses == 7


class TestSuites:
    def test_full_suite_covers_everything(self):
        assert set(SUITES["full"]) == set(KERNELS)

    def test_suite_kernels_resolved(self):
        kernels = suite_kernels("core8")
        assert len(kernels) == 8
        assert all(k.name in KERNELS for k in kernels)

    def test_unknown_suite(self):
        with pytest.raises(WorkloadError, match="unknown suite"):
            suite_kernels("gigantic")
