"""Scalar offset assignment: the paper's 'complementary' technique.

The paper positions its array-addressing method as complementary to
offset assignment for scalar variables (refs [4, 5]).  This example
runs both on the same kernel: address registers for the array accesses,
memory layout (SOA) for the scalars -- and shows GOA splitting scalars
over several address registers.

Run:  python examples/scalar_layout.py
"""

from repro import AddressRegisterAllocator, AguSpec, parse_kernel
from repro.offset import (
    AccessSequence,
    assignment_cost,
    goa_greedy,
    liao_soa,
    ofu_assignment,
    tiebreak_soa,
)

SOURCE = """
int x[128], y[128], a, b, c, d, e;
for (i = 1; i < 100; i++) {
    a = x[i] * b + c;
    d = x[i-1] * b - a;
    y[i] = a + d + e;
    c = d * e;
    b = a - c;
}
"""


def main() -> None:
    kernel = parse_kernel(SOURCE, name="mixed_kernel")

    # --- Arrays: the paper's technique ---------------------------------
    allocation = AddressRegisterAllocator(AguSpec(2, 1)).allocate(kernel)
    print("array accesses -> address registers")
    print(allocation.summary())
    print()

    # --- Scalars: offset assignment ------------------------------------
    sequence = AccessSequence.from_kernel(kernel)
    print(f"scalar access sequence ({len(sequence)} accesses): "
          f"{sequence}\n")

    for label, layout in [
        ("order of first use (naive)", ofu_assignment(sequence)),
        ("Liao's SOA heuristic [4]", liao_soa(sequence)),
        ("Leupers/Marwedel tie-break [5]", tiebreak_soa(sequence)),
    ]:
        cost = assignment_cost(layout, sequence)
        print(f"{label:32s} layout={layout}  cost={cost}")

    print()
    for k in (2, 3):
        result = goa_greedy(sequence, k)
        groups = " | ".join(", ".join(group) for group in result.groups)
        print(f"GOA over k={k} address registers: cost={result.cost}  "
              f"groups: {groups}")


if __name__ == "__main__":
    main()
