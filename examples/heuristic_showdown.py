"""Best-pair merging vs naive merging vs the exhaustive optimum.

A miniature version of the paper's statistical analysis (Results
section) on instances small enough that the true optimum can be
computed: draws random access patterns, allocates with all three
strategies, and prints the per-pattern and aggregate outcome.

Run:  python examples/heuristic_showdown.py
"""

from repro import AddressRegisterAllocator, AguSpec, optimal_allocation
from repro.analysis.stats import mean, percent_reduction
from repro.analysis.tables import Column, Table
from repro.workloads.random_patterns import (
    RandomPatternConfig,
    generate_batch,
)

N_ACCESSES = 10
N_PATTERNS = 12
K, M = 2, 1


def main() -> None:
    allocator = AddressRegisterAllocator(AguSpec(K, M))
    patterns = generate_batch(
        RandomPatternConfig(N_ACCESSES, offset_span=6), N_PATTERNS,
        seed=2024)

    table = Table([
        Column("#", "index"),
        Column("offsets", "offsets", align="<"),
        Column("K~", "k_tilde"),
        Column("optimal", "optimal"),
        Column("best-pair", "best"),
        Column("naive", "naive"),
    ], title=f"unit-cost address computations (K={K}, M={M})")

    optimal_costs, best_costs, naive_costs = [], [], []
    for index, pattern in enumerate(patterns):
        best = allocator.allocate(pattern)
        naive = allocator.allocate_naive(pattern, seed=index)
        optimum = optimal_allocation(pattern, K, M)
        optimal_costs.append(optimum.total_cost)
        best_costs.append(best.total_cost)
        naive_costs.append(naive.total_cost)
        table.add_row(index=index, offsets=str(list(pattern.offsets())),
                      k_tilde=best.k_tilde, optimal=optimum.total_cost,
                      best=best.total_cost, naive=naive.total_cost)

    print(table.render())
    reduction = percent_reduction(mean(naive_costs), mean(best_costs))
    gap = percent_reduction(mean(best_costs), mean(optimal_costs))
    print(f"means: optimal {mean(optimal_costs):.2f}, "
          f"best-pair {mean(best_costs):.2f}, "
          f"naive {mean(naive_costs):.2f}")
    print(f"best-pair cuts naive cost by {reduction:.1f} % "
          f"(paper reports ~40 % over its full grid)")
    print(f"and sits {gap:.1f} % above the exhaustive optimum.")


if __name__ == "__main__":
    main()
