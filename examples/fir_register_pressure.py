"""Register-pressure sweep on a real DSP kernel (16-tap FIR).

Shows how the addressing cost of a realistic filter loop grows as the
AGU's register file shrinks -- the trade-off the paper's phase 2
navigates -- and compares the paper's best-pair merging against the
naive baseline at every pressure level.

Run:  python examples/fir_register_pressure.py
"""

from repro import AddressRegisterAllocator, AguSpec
from repro.analysis.tables import Column, Table
from repro.workloads.kernels import get_kernel


def main() -> None:
    entry = get_kernel("fir16")
    kernel = entry.kernel()
    n = len(kernel.pattern)
    print(f"kernel: {entry.name} -- {entry.description}")
    print(f"accesses per iteration: {n}\n")

    table = Table([
        Column("K", "k"),
        Column("K~", "k_tilde"),
        Column("best-pair cost", "best"),
        Column("naive cost", "naive"),
        Column("baseline (no AGU)", "baseline"),
    ], title="addressing cost per iteration vs register count")

    for k in (16, 12, 8, 6, 4, 3, 2, 1):
        allocator = AddressRegisterAllocator(AguSpec(k, 1))
        optimized = allocator.allocate(kernel)
        naive = allocator.allocate_naive(kernel, seed=0)
        table.add_row(k=k, k_tilde=optimized.k_tilde,
                      best=optimized.total_cost, naive=naive.total_cost,
                      baseline=n)
    print(table.render())
    print("K~ registers make addressing free; below that, best-pair")
    print("merging degrades much more gracefully than naive merging.")


if __name__ == "__main__":
    main()
