"""Bring your own kernel: compile custom source for a custom AGU.

Demonstrates the library as a user would adopt it: write a loop in the
C-like kernel language, pick (or define) an AGU, inspect the access
graph, and read the generated address code -- including the Graphviz
export for documentation.

Run:  python examples/custom_kernel.py
"""

from repro import (
    AccessGraph,
    AguSpec,
    PRESETS,
    compile_kernel,
    graph_to_dot,
    parse_kernel,
)

# A two-channel mixer: interleaved stereo input, two gain taps each.
SOURCE = """
int in[256], outL[128], outR[128], gL, gR;
for (i = 0; i < 120; i++) {
    outL[i] = in[2*i] * gL + in[2*i+2] * gL;
    outR[i] = in[2*i+1] * gR + in[2*i+3] * gR;
}
"""


def main() -> None:
    kernel = parse_kernel(SOURCE, name="stereo_mixer")
    print(f"kernel: {kernel.name}")
    print(f"arrays: {', '.join(d.name for d in kernel.arrays)}")
    print(f"accesses/iteration: {len(kernel.pattern)}")
    print(f"access pattern: {kernel.pattern}\n")

    # The stride-2 accesses (coefficient 2) are exactly the case where
    # phase 1's wrap-around reasoning matters: a register can follow
    # in[2i] and in[2i+1] together for free, but neither alone.
    graph = AccessGraph(kernel.pattern, modify_range=1)
    print(f"access graph: {graph}\n")

    for spec_name in ("adsp210x_like", "tight_k2"):
        spec = PRESETS[spec_name]
        artifacts = compile_kernel(kernel, spec, n_iterations=16)
        allocation = artifacts.allocation
        print(f"--- on {spec} ---")
        print(f"  K~={allocation.k_tilde}  "
              f"registers used={allocation.n_registers_used}  "
              f"unit-cost/iter={allocation.total_cost}")
        print(f"  simulator verified "
              f"{artifacts.simulation.n_accesses_verified} addresses\n")

    # Full artifacts for one custom AGU.
    artifacts = compile_kernel(kernel, AguSpec(3, 2, "custom_m2"),
                               n_iterations=16)
    print(artifacts.listing)

    dot = graph_to_dot(graph, name="stereo_mixer")
    print("Graphviz export (feed to `dot -Tpng`):\n")
    print(dot)


if __name__ == "__main__":
    main()
