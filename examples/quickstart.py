"""Quickstart: the paper's example loop, end to end.

Reproduces the full story of Basu/Leupers/Marwedel (DATE 1998) on the
loop from the paper's section 2:

1. parse the kernel source,
2. build the access graph (Figure 1),
3. compute the minimum zero-cost cover (K~ virtual registers),
4. merge down to the physical register count K,
5. generate AGU address code and verify it by simulation.

Run:  python examples/quickstart.py
"""

from repro import (
    AccessGraph,
    AddressRegisterAllocator,
    AguSpec,
    compile_kernel,
    graph_to_ascii,
    parse_kernel,
)

SOURCE = """
/* The example loop of the paper's section 2. */
for (i = 2; i <= N; i++) {
    A[i+1];   /* a_1 */
    A[i];     /* a_2 */
    A[i+2];   /* a_3 */
    A[i-1];   /* a_4 */
    A[i+1];   /* a_5 */
    A[i];     /* a_6 */
    A[i-2];   /* a_7 */
}
"""


def main() -> None:
    kernel = parse_kernel(SOURCE, name="paper_example")
    print(f"parsed: {kernel.loop}\n")

    # --- Figure 1: the access graph ------------------------------------
    graph = AccessGraph(kernel.pattern, modify_range=1)
    print(graph_to_ascii(graph))

    # --- Phase 1: how many registers for free addressing? --------------
    generous = AddressRegisterAllocator(AguSpec(n_registers=8,
                                                modify_range=1))
    unconstrained = generous.allocate(kernel)
    print(f"K~ = {unconstrained.k_tilde} virtual registers suffice "
          f"for a zero-cost addressing scheme:")
    print(f"  {unconstrained.cover}\n")

    # --- Phase 2: the register constraint (K = 2) ----------------------
    tight = AddressRegisterAllocator(AguSpec(n_registers=2,
                                             modify_range=1))
    constrained = tight.allocate(kernel)
    print(constrained.summary())
    print()

    # --- Code generation + simulator audit -----------------------------
    artifacts = compile_kernel(kernel, AguSpec(2, 1), n_iterations=50)
    print(artifacts.listing)
    simulation = artifacts.simulation
    print(f"simulator: verified {simulation.n_accesses_verified} "
          f"addresses over {simulation.n_iterations} iterations; "
          f"{simulation.overhead_per_iteration} unit-cost "
          f"instruction(s) per iteration, matching the model.")


if __name__ == "__main__":
    main()
