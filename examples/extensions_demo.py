"""The extensions working together: modify registers + reordering.

The paper's allocator pays one instruction per transition outside the
auto-modify range.  Two hardware/compiler features recover most of
that residual cost:

1. *modify registers* -- preload the frequent long jumps, then take
   them for free (``*(ARx)+MRj``);
2. *access reordering* -- schedule independent accesses so the jumps
   shrink in the first place.

This demo stacks them on a deliberately nasty pattern and shows the
cost ladder, ending with the simulator's verdict on the MR program.

Run:  python examples/extensions_demo.py
"""

from repro import AddressRegisterAllocator, AguSpec
from repro.agu import generate_address_code, program_listing, simulate
from repro.ir.builder import pattern_from_offsets
from repro.ir.layout import MemoryLayout
from repro.ir.types import ArrayDecl, Loop
from repro.modreg import allocate_with_modify_registers
from repro.reorder import reorder_accesses

# Two interleaved walks 12 apart: expensive in program order on one
# register, and the +12/-12 hops repeat -- ideal for both extensions.
OFFSETS = [0, 12, 1, 13, 2, 14, 3, 15]


def main() -> None:
    pattern = pattern_from_offsets(OFFSETS)
    base_spec = AguSpec(1, 1, "base")

    plain = AddressRegisterAllocator(base_spec).allocate(pattern)
    print(f"paper's allocator, K=1, M=1:            cost = "
          f"{plain.total_cost}")

    mr_spec = AguSpec(1, 1, "with_mrs", n_modify_registers=2)
    with_mrs = allocate_with_modify_registers(pattern, mr_spec)
    print(f"+ 2 modify registers (values "
          f"{with_mrs.modify_values}):      cost = {with_mrs.total_cost}")

    reordered = reorder_accesses(pattern, base_spec)
    print(f"+ access reordering instead:            cost = "
          f"{reordered.cost}  (order {reordered.order})")

    both = allocate_with_modify_registers(reordered.pattern, mr_spec)
    print(f"+ both (reorder, then modify registers): cost = "
          f"{both.total_cost}")

    print()
    program = generate_address_code(reordered.pattern, both.cover,
                                    mr_spec,
                                    modify_values=both.modify_values)
    print(program_listing(program, title="reordered + MR program"))

    loop = Loop(reordered.pattern, start=0, n_iterations=20)
    layout = MemoryLayout.contiguous([ArrayDecl("A", length=64)])
    result = simulate(program, loop, layout)
    print(f"simulator: {result.n_accesses_verified} addresses verified, "
          f"{result.overhead_per_iteration} unit-cost instruction(s) per "
          f"iteration")


if __name__ == "__main__":
    main()
